//! Lift a [`SingleMutex`] into the workspace-wide [`Allocator`] interface.
//!
//! This serves two purposes: it lets the mutual-exclusion substrates be
//! tested under the same randomized `VirtualNet` harness (and the timed
//! simulator) as the multi-resource protocols, and it documents the precise
//! correspondence: a single-resource system is the degenerate multi-resource
//! problem with `M = 1`.

use crate::SingleMutex;
use mra_protocol::{Allocator, Ctx, ProcState, WireMsg};
use mra_types::{NodeId, ResourceSet};

/// [`Allocator`] adapter over any [`SingleMutex`].
///
/// Every request must be for the same singleton resource set (conventionally
/// `{0}`); the adapter asserts this.
pub struct MutexAllocator<X: SingleMutex> {
    inner: X,
    state: ProcState,
    name: &'static str,
}

impl<X: SingleMutex> MutexAllocator<X> {
    /// Wrap `inner`, reporting `name` in summaries.
    pub fn new(inner: X, name: &'static str) -> Self {
        MutexAllocator {
            inner,
            state: ProcState::Idle,
            name,
        }
    }

    /// Access the wrapped protocol (tests inspect token position).
    pub fn inner(&self) -> &X {
        &self.inner
    }
}

/// Bridge a `Ctx` send queue into the `FnMut(NodeId, Msg)` sink the mutex
/// substrates expect.
fn with_sink<M, R>(ctx: &mut Ctx<M>, f: impl FnOnce(&mut dyn FnMut(NodeId, M)) -> R) -> R {
    let mut buf: Vec<(NodeId, M)> = Vec::new();
    let r = f(&mut |to, m| buf.push((to, m)));
    for (to, m) in buf {
        ctx.send(to, m);
    }
    r
}

impl<X: SingleMutex> Allocator for MutexAllocator<X>
where
    X::Msg: WireMsg,
{
    type Msg = X::Msg;

    fn on_init(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: NodeId, msg: Self::Msg) {
        let acquired = with_sink(ctx, |sink| self.inner.on_message(from, msg, sink));
        if acquired {
            debug_assert_eq!(self.state, ProcState::WaitCS);
            self.state = ProcState::InCS;
            ctx.grant();
        }
    }

    fn request(&mut self, ctx: &mut Ctx<Self::Msg>, resources: ResourceSet) {
        assert_eq!(self.state, ProcState::Idle, "request while busy");
        assert_eq!(
            resources.len(),
            1,
            "MutexAllocator manages exactly one resource"
        );
        let acquired = with_sink(ctx, |sink| self.inner.request(sink));
        if acquired {
            self.state = ProcState::InCS;
            ctx.grant();
        } else {
            self.state = ProcState::WaitCS;
        }
    }

    fn release(&mut self, ctx: &mut Ctx<Self::Msg>) {
        assert_eq!(self.state, ProcState::InCS, "release outside CS");
        with_sink(ctx, |sink| self.inner.release(sink));
        self.state = ProcState::Idle;
    }

    fn state(&self) -> ProcState {
        self.state
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NaimiTrehel, SuzukiKasami};
    use mra_protocol::testkit::{run_random_workload, ExerciseCfg, VirtualNet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nt_net(n: usize) -> VirtualNet<MutexAllocator<NaimiTrehel<()>>> {
        let nodes = (0..n)
            .map(|i| {
                let mut nt = NaimiTrehel::new(i, 0);
                if i == 0 {
                    nt.give_initial_token(());
                }
                MutexAllocator::new(nt, "naimi-trehel")
            })
            .collect();
        VirtualNet::new(nodes, 1)
    }

    fn sk_net(n: usize) -> VirtualNet<MutexAllocator<SuzukiKasami>> {
        let nodes = (0..n)
            .map(|i| MutexAllocator::new(SuzukiKasami::new(i, n, 0), "suzuki-kasami"))
            .collect();
        VirtualNet::new(nodes, 1)
    }

    fn single_resource_cfg(rounds: usize) -> ExerciseCfg {
        ExerciseCfg {
            rounds_per_node: rounds,
            max_req_size: 1,
            m: 1,
            hold_steps: 2,
            active_nodes: None,
            step_cap: 500_000,
        }
    }

    #[test]
    fn naimi_trehel_random_safety_liveness() {
        for seed in 0..10 {
            let mut net = nt_net(6);
            let mut rng = StdRng::seed_from_u64(seed);
            let rep = run_random_workload(&mut net, &single_resource_cfg(6), &mut rng);
            assert_eq!(rep.cs_completed, 36, "seed {seed}");
            // Single resource: concurrency can never exceed 1.
            assert_eq!(rep.max_concurrency, 1, "seed {seed}");
        }
    }

    #[test]
    fn suzuki_kasami_random_safety_liveness() {
        for seed in 0..10 {
            let mut net = sk_net(6);
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let rep = run_random_workload(&mut net, &single_resource_cfg(6), &mut rng);
            assert_eq!(rep.cs_completed, 36, "seed {seed}");
            assert_eq!(rep.max_concurrency, 1, "seed {seed}");
        }
    }

    #[test]
    fn exactly_one_token_exists_when_quiet() {
        let mut net = nt_net(5);
        let mut rng = StdRng::seed_from_u64(9);
        run_random_workload(&mut net, &single_resource_cfg(4), &mut rng);
        let holders = (0..5)
            .filter(|&i| net.node(i).inner().holds_token())
            .count();
        assert_eq!(holders, 1);
    }
}
