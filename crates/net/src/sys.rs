//! Thin raw-FFI helpers the reactor transport needs beyond what `std`
//! exposes: nonblocking `connect(2)`, a deeper listen backlog, raising
//! the fd soft limit for big meshes, and process CPU time for the
//! frames-per-core benchmark.  Everything links against the platform
//! libc that `std` already pulls in — no new dependencies, matching the
//! offline-deps pattern of `vendor/`.
//!
//! Non-unix builds get honest fallbacks: blocking connect, no-op backlog
//! and rlimit tweaks, wall-clock standing in for CPU time (the reactor
//! itself is unix-only — see [`crate::reactor`]).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

#[cfg(unix)]
mod imp {
    use super::*;
    use std::mem;
    use std::os::raw::{c_int, c_long, c_void};
    use std::os::unix::io::{AsRawFd, FromRawFd};

    const AF_INET: c_int = 2;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const AF_INET6: c_int = 10;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const AF_INET6: c_int = 30; // macOS/BSD value
    const SOCK_STREAM: c_int = 1;
    const EINPROGRESS: i32 = 36; // macOS/BSD
    const EINPROGRESS_LINUX: i32 = 115;

    #[cfg(any(target_os = "linux", target_os = "android"))]
    const RLIMIT_NOFILE: c_int = 7;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const RLIMIT_NOFILE: c_int = 8;

    #[repr(C)]
    struct SockaddrIn {
        #[cfg(not(any(target_os = "linux", target_os = "android")))]
        sin_len: u8,
        #[cfg(not(any(target_os = "linux", target_os = "android")))]
        sin_family: u8,
        #[cfg(any(target_os = "linux", target_os = "android"))]
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: u32, // network byte order
        sin_zero: [u8; 8],
    }

    #[repr(C)]
    struct SockaddrIn6 {
        #[cfg(not(any(target_os = "linux", target_os = "android")))]
        sin6_len: u8,
        #[cfg(not(any(target_os = "linux", target_os = "android")))]
        sin6_family: u8,
        #[cfg(any(target_os = "linux", target_os = "android"))]
        sin6_family: u16,
        sin6_port: u16, // network byte order
        sin6_flowinfo: u32,
        sin6_addr: [u8; 16],
        sin6_scope_id: u32,
    }

    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    #[repr(C)]
    struct Timeval {
        tv_sec: c_long,
        tv_usec: c_long,
    }

    /// Leading fields of `struct rusage` (`ru_utime` + `ru_stime`); the
    /// kernel writes the full struct, so the buffer pads out the rest.
    #[repr(C)]
    struct RusageHead {
        ru_utime: Timeval,
        ru_stime: Timeval,
        _pad: [u64; 32],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
        fn getrusage(who: c_int, usage: *mut RusageHead) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Start a nonblocking TCP connect to `addr`.  Returns the socket
    /// wrapped in a `TcpStream` that is **not yet connected**: the caller
    /// must wait for write-readiness and then check
    /// [`TcpStream::take_error`] to learn the outcome.
    pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        let fd = unsafe { socket(domain, SOCK_STREAM, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // Wrap immediately: any error below closes the fd via Drop.
        let stream = unsafe { TcpStream::from_raw_fd(fd) };
        stream.set_nonblocking(true)?;
        let rc = match addr {
            SocketAddr::V4(v4) => {
                let sa = SockaddrIn {
                    #[cfg(not(any(target_os = "linux", target_os = "android")))]
                    sin_len: mem::size_of::<SockaddrIn>() as u8,
                    #[cfg(not(any(target_os = "linux", target_os = "android")))]
                    sin_family: AF_INET as u8,
                    #[cfg(any(target_os = "linux", target_os = "android"))]
                    sin_family: AF_INET as u16,
                    sin_port: v4.port().to_be(),
                    sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                    sin_zero: [0; 8],
                };
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockaddrIn).cast(),
                        mem::size_of::<SockaddrIn>() as u32,
                    )
                }
            }
            SocketAddr::V6(v6) => {
                let sa = SockaddrIn6 {
                    #[cfg(not(any(target_os = "linux", target_os = "android")))]
                    sin6_len: mem::size_of::<SockaddrIn6>() as u8,
                    #[cfg(not(any(target_os = "linux", target_os = "android")))]
                    sin6_family: AF_INET6 as u8,
                    #[cfg(any(target_os = "linux", target_os = "android"))]
                    sin6_family: AF_INET6 as u16,
                    sin6_port: v6.port().to_be(),
                    sin6_flowinfo: v6.flowinfo(),
                    sin6_addr: v6.ip().octets(),
                    sin6_scope_id: v6.scope_id(),
                };
                unsafe {
                    connect(
                        fd,
                        (&sa as *const SockaddrIn6).cast(),
                        mem::size_of::<SockaddrIn6>() as u32,
                    )
                }
            }
        };
        if rc == 0 {
            return Ok(stream); // connected instantly (loopback fast path)
        }
        match io::Error::last_os_error().raw_os_error() {
            Some(e) if e == EINPROGRESS || e == EINPROGRESS_LINUX => Ok(stream),
            _ => Err(io::Error::last_os_error()),
        }
    }

    /// Deepen the accept backlog of an already-listening socket.  `std`
    /// hard-codes backlog 128; a 256-node mesh sends every peer's SYN at
    /// once and an overflowing queue costs whole TCP retry seconds.
    /// Calling `listen(2)` again on a listening socket updates the backlog
    /// in place (POSIX-sanctioned; both Linux and the BSDs honour it).
    pub fn listen_backlog(listener: &TcpListener, backlog: i32) -> io::Result<()> {
        let rc = unsafe { listen(listener.as_raw_fd(), backlog) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Raise the fd soft limit to at least `needed` (clamped to the hard
    /// limit).  Returns the resulting soft limit.
    pub fn raise_nofile_limit(needed: u64) -> io::Result<u64> {
        let mut lim = Rlimit { rlim_cur: 0, rlim_max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.rlim_cur >= needed {
            return Ok(lim.rlim_cur);
        }
        let want = Rlimit {
            rlim_cur: needed.min(lim.rlim_max),
            rlim_max: lim.rlim_max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(want.rlim_cur)
    }

    /// CPU time (user + system) consumed by this process so far.
    pub fn process_cpu_time() -> Duration {
        let mut ru = RusageHead {
            ru_utime: Timeval { tv_sec: 0, tv_usec: 0 },
            ru_stime: Timeval { tv_sec: 0, tv_usec: 0 },
            _pad: [0; 32],
        };
        // RUSAGE_SELF = 0 everywhere.
        if unsafe { getrusage(0, &mut ru) } < 0 {
            return Duration::ZERO;
        }
        let secs = (ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) as u64;
        let usecs = (ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) as u64;
        Duration::from_secs(secs) + Duration::from_micros(usecs)
    }

    /// Close an arbitrary fd (used only in tests; `TcpStream` closes its
    /// own on drop).
    #[allow(dead_code)]
    pub fn close_fd(fd: c_int) {
        unsafe {
            close(fd);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::*;

    pub fn connect_nonblocking(addr: SocketAddr) -> io::Result<TcpStream> {
        // Blocking connect, then flip to nonblocking: functionally
        // equivalent, just serialized during setup.
        let s = TcpStream::connect(addr)?;
        s.set_nonblocking(true)?;
        Ok(s)
    }

    pub fn listen_backlog(_listener: &TcpListener, _backlog: i32) -> io::Result<()> {
        Ok(())
    }

    pub fn raise_nofile_limit(_needed: u64) -> io::Result<u64> {
        Ok(u64::MAX)
    }

    pub fn process_cpu_time() -> Duration {
        Duration::ZERO
    }
}

pub use imp::{connect_nonblocking, listen_backlog, process_cpu_time, raise_nofile_limit};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn nonblocking_connect_completes_against_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(addr).expect("connect start");
        let (mut inbound, _) = listener.accept().expect("accept");
        // Outcome check: no socket error once accepted.
        // (Poll-based callers wait for writability first; against a
        // loopback backlog the handshake is already done.)
        if let Some(e) = stream.take_error().unwrap() {
            panic!("connect failed: {e}");
        }
        drop(stream);
        let mut buf = Vec::new();
        // EOF proves the connection was fully established then closed.
        inbound.read_to_end(&mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_an_error() {
        // Bind-then-drop guarantees the port is closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        match connect_nonblocking(addr) {
            // Either shape is fine: instant refusal, or EINPROGRESS whose
            // failure surfaces via take_error once the kernel gives up.
            Err(_) => {}
            Ok(s) => {
                let mut err = None;
                for _ in 0..200 {
                    if let Some(e) = s.take_error().unwrap() {
                        err = Some(e);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                assert!(err.is_some(), "refused connect surfaced no error");
            }
        }
    }

    #[test]
    fn listen_backlog_and_rlimit_are_callable() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        listen_backlog(&l, 1024).expect("re-listen with deeper backlog");
        let lim = raise_nofile_limit(256).expect("query/raise fd limit");
        assert!(lim >= 256);
    }

    #[test]
    fn cpu_time_is_monotone() {
        let a = process_cpu_time();
        // Burn a little CPU so the clock visibly advances on unix.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc);
        let b = process_cpu_time();
        assert!(b >= a);
    }
}
