//! `mra-node` — run allocation protocols over real TCP.
//!
//! Two modes:
//!
//! * **loopback cluster** (default): spawn an N-node cluster inside this
//!   process, connected through real loopback sockets, run a quota-based
//!   workload under the safety monitor and print the run metrics;
//! * **solo** (`--solo --id I --peers a:p,b:p,…`): run node `I` of a
//!   multi-process cluster (every process must be started with the same
//!   `--algo/--nodes/--resources/--rounds/--seed`).
//!
//! ```text
//! mra-node --algo lass --nodes 8 --resources 16 --rounds 25
//! mra-node --solo --id 0 --peers 127.0.0.1:7100,127.0.0.1:7101 --rounds 10 &
//! mra-node --solo --id 1 --peers 127.0.0.1:7100,127.0.0.1:7101 --rounds 10
//! ```

use mra_baselines::{BouabdallahLaforest, Central, GrantPolicy, Incremental, Maddi};
use mra_core::LassConfig;
use mra_net::{
    run_solo_node, run_tcp_cluster, NetBackend, PeerDirectory, SoloConfig, TcpClusterConfig,
};
use mra_protocol::faults::FaultPlan;
use mra_protocol::reliable::Reliability;
use mra_protocol::{Allocator, WireCodec};
use mra_sim::{FixedWorkload, RunResult, WaitStats};
use mra_types::Time;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
mra-node: distributed multi-resource allocation over real TCP

USAGE:
  mra-node [OPTIONS]                        loopback cluster (default)
  mra-node --solo --id I --peers LIST ...   one node of a multi-process cluster

OPTIONS:
  --algo NAME        lass | lass-noloan | bl | incremental | maddi | central
                     (default lass; central adds one passive coordinator node)
  --nodes N          active nodes (default 8)
  --resources M      shared resources (default 16)
  --rounds R         request/CS cycles per node (default 25)
  --size K           resources per request (default 3)
  --think-us U       think time between cycles, microseconds (default 500)
  --cs-us U          critical-section hold time, microseconds (default 800)
  --latency-us U     artificial extra latency per message (default 0)
  --seed S           workload seed (default 1)
  --solo             run a single node instead of a loopback cluster
  --id I             this node's id (solo mode)
  --peers LIST       comma-separated host:port per node id (solo mode)
  --metrics          dump each node's transport counters (frames/bytes and
                     syscalls per direction, coalescing ratios, frame
                     kinds, retransmissions, RTO fires) to stderr on
                     shutdown
  --help             print this help

ENVIRONMENT:
  MRA_NET_REACTOR=B  choose the TCP transport: truthy pins the readiness-
                     polled reactor (one thread + one poller per node,
                     coalesced writes — the default on unix), falsy pins
                     the thread-per-connection baseline
  MRA_NET_THREADS=1  shorthand for the threaded baseline (loses to an
                     explicit MRA_NET_REACTOR); every process of one
                     cluster must pick the same backend
  MRA_LOSS=P         install the frame-level fault shim: drop each inbound
                     protocol frame with probability P (deterministic per
                     link).  Without MRA_RELIABLE lost tokens are never
                     retransmitted and a lossy quota run can stall.
  MRA_FAULT_SEED=S   seed of the fault decision hash (default 0xFA17)
  MRA_RELIABLE=1     enable the reliable session layer: sequence numbers,
                     cumulative acks and timer-driven retransmission turn
                     MRA_LOSS drops into latency instead of lost liveness
  MRA_RTO_MS=T       initial retransmission timeout in ms (default 10)
  MRA_METRICS=1      same as --metrics
  MRA_TRACE=MODE     arm causal tracing in the node loops (per-node event
                     ordering and counters; the TCP wire does not carry
                     Lamport stamps) -- '0' off, 'ring'/'ring:N' bounded,
                     anything else unbounded
  MRA_TRACE_FILE=F   write the merged trace as JSONL to F (implies
                     MRA_TRACE) -- analyze with mra-trace
";

#[derive(Clone, Debug)]
struct Opts {
    algo: String,
    nodes: usize,
    resources: usize,
    rounds: usize,
    size: usize,
    think_us: u64,
    cs_us: u64,
    latency_us: u64,
    seed: u64,
    solo: bool,
    id: usize,
    peers: Option<String>,
    metrics: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            algo: "lass".into(),
            nodes: 8,
            resources: 16,
            rounds: 25,
            size: 3,
            think_us: 500,
            cs_us: 800,
            latency_us: 0,
            seed: 1,
            solo: false,
            id: 0,
            peers: None,
            metrics: false,
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mra-node: {msg}\n\n{USAGE}");
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--algo" => opts.algo = val("--algo"),
            "--nodes" => opts.nodes = parse_num(&val("--nodes"), "--nodes"),
            "--resources" => opts.resources = parse_num(&val("--resources"), "--resources"),
            "--rounds" => opts.rounds = parse_num(&val("--rounds"), "--rounds"),
            "--size" => opts.size = parse_num(&val("--size"), "--size"),
            "--think-us" => opts.think_us = parse_num(&val("--think-us"), "--think-us"),
            "--cs-us" => opts.cs_us = parse_num(&val("--cs-us"), "--cs-us"),
            "--latency-us" => opts.latency_us = parse_num(&val("--latency-us"), "--latency-us"),
            "--seed" => opts.seed = parse_num(&val("--seed"), "--seed"),
            "--solo" => opts.solo = true,
            "--id" => opts.id = parse_num(&val("--id"), "--id"),
            "--peers" => opts.peers = Some(val("--peers")),
            "--metrics" => opts.metrics = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    if opts.nodes == 0 || opts.resources == 0 || opts.rounds == 0 {
        die("--nodes, --resources and --rounds must be positive");
    }
    if opts.size == 0 || opts.size > opts.resources {
        die("--size must be in 1..=resources");
    }
    // MRA_METRICS=1 is the flag's environment twin (handy when the
    // command line is owned by a harness).
    if std::env::var("MRA_METRICS").is_ok_and(|v| v == "1") {
        opts.metrics = true;
    }
    opts
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: invalid number {s:?}")))
}

fn workload(opts: &Opts) -> FixedWorkload {
    FixedWorkload {
        think: Time::from_micros(opts.think_us),
        cs: Time::from_micros(opts.cs_us),
        m: opts.resources,
        size: opts.size,
    }
}

/// Run either harness for one concrete protocol type.
fn run_with<A>(protos: Vec<A>, active: usize, opts: &Opts) -> RunResult
where
    A: Allocator + Send + 'static,
    A::Msg: WireCodec,
{
    let n = protos.len();
    let extra_latency = Time::from_micros(opts.latency_us);
    let faults = FaultPlan::from_env();
    let reliability = Reliability::from_env();
    if let Some(plan) = &faults {
        eprintln!(
            "mra-node: fault shim active: drop={} seed={}{}",
            plan.link.drop,
            plan.seed,
            if reliability.is_some() {
                " (recovered by the reliable session layer)"
            } else {
                " (lossy runs may stall; set MRA_RELIABLE=1 to recover drops)"
            }
        );
    }
    if let Some(rel) = &reliability {
        eprintln!(
            "mra-node: reliable session layer on: rto={:.1}ms cap={:.1}ms (MRA_RTO_MS)",
            rel.rto.as_millis_f64(),
            rel.rto_cap.as_millis_f64()
        );
    }
    if opts.solo {
        let spec = opts
            .peers
            .as_deref()
            .unwrap_or_else(|| die("--solo needs --peers"));
        let dir = PeerDirectory::parse(spec).unwrap_or_else(|e| die(&e));
        if dir.len() != n {
            die(&format!(
                "--peers lists {} addresses but the {} cluster has {n} nodes",
                dir.len(),
                opts.algo
            ));
        }
        if opts.id >= n {
            die(&format!("--id {} out of range 0..{n}", opts.id));
        }
        let mut protos = protos;
        let proto = protos.swap_remove(opts.id);
        run_solo_node(
            opts.id,
            proto,
            workload(opts),
            opts.resources,
            &dir,
            SoloConfig {
                rounds: opts.rounds,
                seed: opts.seed,
                extra_latency,
                active,
                connect_timeout: Duration::from_secs(30),
                faults,
                reliability,
                metrics: opts.metrics,
                backend: NetBackend::from_env(),
            },
        )
        .unwrap_or_else(|e| die(&format!("transport setup failed: {e}")))
    } else {
        let workloads: Vec<FixedWorkload> = (0..n).map(|_| workload(opts)).collect();
        run_tcp_cluster(
            protos,
            workloads,
            opts.resources,
            TcpClusterConfig {
                rounds: opts.rounds,
                seed: opts.seed,
                extra_latency,
                active_nodes: Some(active),
                faults,
                reliability,
                metrics: opts.metrics,
                backend: NetBackend::from_env(),
            },
        )
    }
}

fn print_result(res: &RunResult, opts: &Opts) {
    let w = res.wait_stats();
    println!(
        "algo={} nodes={} resources={} rounds={}",
        res.algo, res.n, res.m, opts.rounds
    );
    println!(
        "cs_completed={} censored={} msgs_total={} msgs_per_cs={:.1} msg_weight={}",
        res.cs_completed,
        res.censored,
        res.msgs_total,
        res.msgs_per_cs(),
        res.msg_weight
    );
    println!(
        "wait_ms: mean={} std={} median={} p95={} p99={} p999={} (n={})",
        WaitStats::cell(w.mean_ms, 3),
        WaitStats::cell(w.std_ms, 3),
        WaitStats::cell(w.median_ms, 3),
        WaitStats::cell(w.p95_ms, 3),
        WaitStats::cell(w.p99_ms, 3),
        WaitStats::cell(w.p999_ms, 3),
        w.count
    );
    println!("use_rate={:.1}%", 100.0 * res.use_rate());
    let mut kinds: Vec<_> = res.msg_by_kind.clone();
    kinds.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let kinds: Vec<String> = kinds.iter().map(|(k, c)| format!("{k}={c}")).collect();
    println!("by_kind: {}", kinds.join(" "));
}

fn main() {
    let opts = parse_opts();
    let (n, m) = (opts.nodes, opts.resources);
    let res = match opts.algo.as_str() {
        "lass" => run_with(LassConfig::with_loan(n, m).build_nodes(), n, &opts),
        "lass-noloan" => run_with(LassConfig::without_loan(n, m).build_nodes(), n, &opts),
        "bl" => run_with(BouabdallahLaforest::build_nodes(n, m), n, &opts),
        "incremental" => run_with(Incremental::build_nodes(n, m), n, &opts),
        "maddi" => run_with(Maddi::build_nodes(n, m), n, &opts),
        // `central` appends a passive coordinator as node n.
        "central" => run_with(Central::build_nodes(n, GrantPolicy::Conservative), n, &opts),
        other => die(&format!("unknown algorithm {other:?}")),
    };
    print_result(&res, &opts);
    // MRA_TRACE_FILE: persist the merged trace (armed automatically by
    // RunShared when the knob is set).  TCP frames carry no Lamport
    // stamps, so the trace has per-node ordering and counters only.
    if let (Some(path), Some(trace)) =
        (mra_obs::trace_file_from_env(), res.obs.trace.as_ref())
    {
        match mra_obs::write_jsonl_file(&path, trace, &res.algo, res.n, res.m) {
            Ok(()) => eprintln!("mra-node: trace written to {path}"),
            Err(e) => eprintln!("mra-node: writing trace to {path} failed: {e}"),
        }
    }
    // The run is quota-based: anything short of the quota is a liveness
    // failure worth a non-zero exit.
    let expected = if opts.solo {
        if opts.id < opts.nodes { opts.rounds as u64 } else { 0 }
    } else {
        (opts.nodes * opts.rounds) as u64
    };
    if res.cs_completed != expected {
        eprintln!(
            "mra-node: completed {} critical sections, expected {expected}",
            res.cs_completed
        );
        exit(1);
    }
}
