//! # mra-net — real TCP transport and node runtime
//!
//! The paper evaluated LASS on a 32-node cluster over OpenMPI; this crate
//! is the workspace's equivalent deployment surface.  It turns the pure
//! [`Allocator`](mra_protocol::Allocator) state machines into nodes that
//! talk over actual sockets — the fourth substrate, after the virtual
//! test network, the discrete-event simulator and the mpsc threaded
//! runtime — so wire-level and simulated behavior can be compared on the
//! same metrics ([`RunResult`](mra_sim::RunResult)).
//!
//! Layers:
//!
//! * [`frame`] — length-prefixed framing and the connection handshake;
//!   messages are encoded with the hand-rolled
//!   [`WireCodec`](mra_protocol::WireCodec) implementations that live
//!   next to each protocol's message types (no serde: the wire format is
//!   specified in `mra_protocol::wire`).
//! * [`transport`] — the threaded TCP mesh: one framed connection per
//!   ordered node pair (per-link FIFO for free), a peer directory
//!   (`NodeId → SocketAddr`), reader threads, and transport-level
//!   shutdown coordination.  Implements [`mra_sim::NodePort`], the same
//!   abstraction the mpsc runtime uses, so both substrates are backends
//!   of one shared node loop (`mra_sim::runtime`).
//! * [`reactor`] — the readiness-polled transport (the default): one
//!   reactor thread per node drives every peer socket through the
//!   [`polling`] epoll/kqueue shim, with one **bidirectional** connection
//!   per unordered pair, write coalescing (many frames + piggybacked
//!   acks per `write(2)`), and reliability RTOs on the reactor's timer
//!   wheel.  Select with [`NetBackend`] / `MRA_NET_REACTOR` /
//!   `MRA_NET_THREADS`.
//! * [`sys`] — raw-FFI odds and ends `std` lacks: nonblocking
//!   `connect(2)`, listen-backlog deepening, fd rlimit raising, process
//!   CPU time for the frames-per-core benchmark.
//! * [`cluster`] — harnesses: [`run_tcp_cluster`] spawns an N-node
//!   loopback cluster in one process (with full
//!   [`SafetyMonitor`](mra_protocol::testkit::SafetyMonitor) coverage);
//!   [`run_solo_node`] runs one node of a multi-process cluster.
//!
//! The `mra-node` binary wraps the harnesses into a CLI:
//!
//! ```text
//! mra-node --algo lass --nodes 8 --resources 16 --rounds 25
//! ```
//!
//! ## Example: LASS over real sockets
//!
//! ```
//! use mra_core::LassConfig;
//! use mra_net::{run_tcp_cluster, TcpClusterConfig};
//! use mra_sim::FixedWorkload;
//! use mra_types::Time;
//!
//! let cfg = LassConfig::with_loan(3, 6);
//! let workloads = (0..3)
//!     .map(|_| FixedWorkload {
//!         think: Time::from_micros(100),
//!         cs: Time::from_micros(200),
//!         m: 6,
//!         size: 2,
//!     })
//!     .collect();
//! let res = run_tcp_cluster(cfg.build_nodes(), workloads, 6, TcpClusterConfig::new(2, 7));
//! assert_eq!(res.cs_completed, 6); // 3 nodes x 2 rounds, zero violations
//! ```

pub mod cluster;
pub mod frame;
pub mod reactor;
pub mod sys;
pub mod transport;

pub use cluster::{run_solo_node, run_tcp_cluster, SoloConfig, TcpClusterConfig};
pub use reactor::{connect_reactor_mesh, ReactorPort};
pub use transport::{connect_mesh, MeshConfig, NetBackend, PeerDirectory, PortCtrl, TcpPort};
