//! Length-prefixed framing over a byte stream.
//!
//! Every frame is `[len: u32 LE][tag: u8][payload: len-1 bytes]`; the
//! payload of a [`TAG_MSG`] frame is one `WireCodec`-encoded protocol
//! message, control frames ([`TAG_SHUTDOWN`], [`TAG_DONE`]) carry none.
//! TCP guarantees byte order, so frames on one connection arrive intact
//! and FIFO — exactly the per-link delivery model the simulator and the
//! mpsc runtime assume.
//!
//! A connection opens with a 4-byte handshake: the connector's `NodeId` as
//! `u32 LE`.  The threaded transport uses links unidirectionally (each
//! ordered node pair has its own connection); the reactor transport runs
//! one **bidirectional** connection per unordered pair.  Either way the
//! handshake is all the receiver needs to attribute traffic.
//!
//! Two decoders share the wire format: [`read_frame`] (blocking, one
//! reader thread per connection) and [`FrameBuf`] (incremental, for
//! nonblocking sockets under the reactor).

use mra_types::NodeId;
use std::io::{self, Read, Write};

/// Frame tag: the payload is one encoded protocol message.
pub const TAG_MSG: u8 = 0;
/// Frame tag: cluster-wide shutdown (empty payload).
pub const TAG_SHUTDOWN: u8 = 1;
/// Frame tag: the sender completed its round quota (empty payload; solo
/// deployments route these to node 0, which coordinates shutdown).
pub const TAG_DONE: u8 = 2;
/// Frame tag: a reliable-session data frame — payload is
/// `[seq: u64 LE][ack: u64 LE]` followed by one encoded protocol message
/// (see `mra_protocol::reliable`).
pub const TAG_RDATA: u8 = 3;
/// Frame tag: a reliable-session standalone cumulative ack — payload is
/// `[ack: u64 LE]`.
pub const TAG_RACK: u8 = 4;

/// Upper bound on a frame's `len` field.  The largest legitimate message
/// (a full token batch with per-resource counters) is a few KiB; 64 KiB
/// leaves an order-of-magnitude margin while keeping a corrupt or hostile
/// length prefix — which used to provoke a multi-megabyte allocation
/// attempt before any validation — rejected before the buffer grows.
pub const MAX_FRAME: usize = 64 * 1024;

/// Size of the frame header (`len` field + tag byte).
pub const HEADER: usize = 5;

/// Size of the reliable-session data header inside a [`TAG_RDATA`] payload.
pub const RDATA_HEADER: usize = 16;

/// Start building a frame in `buf`: clear it and reserve the header.
/// Encode the payload directly after, then call [`end_frame`].  This pair
/// is the *only* owner of the header layout; senders that want the
/// single-write/reused-buffer fast path go through it instead of
/// hand-rolling the five bytes.
#[inline]
pub fn begin_frame(buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&[0u8; HEADER]);
}

/// Finalize a frame started with [`begin_frame`]: patch the length and
/// tag into the reserved header.  The buffer is then ready to write as
/// one contiguous frame.
///
/// # Panics
/// If the frame body exceeds [`MAX_FRAME`]: the receiver would reject it
/// and kill the link with no hint of the cause, so an oversized frame
/// fails loudly at the *sender*.  Unreachable for every legitimate
/// message (the largest, a full control-token batch, is a few KiB — the
/// resource universe is hard-capped at 256).
#[inline]
pub fn end_frame(buf: &mut [u8], tag: u8) {
    debug_assert!(buf.len() >= HEADER);
    let len = buf.len() - 4;
    assert!(
        len <= MAX_FRAME,
        "frame body {len} bytes exceeds MAX_FRAME ({MAX_FRAME}); \
         the receiver would reject it"
    );
    buf[..4].copy_from_slice(&(len as u32).to_le_bytes());
    buf[4] = tag;
}

/// Write one frame.  `payload` may be empty (control frames).
///
/// One `write_all` per frame keeps NODELAY sockets to a single segment.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER + payload.len());
    begin_frame(&mut buf);
    buf.extend_from_slice(payload);
    end_frame(&mut buf, tag);
    w.write_all(&buf)
}

/// Read one frame into `scratch` (resized to the frame body) and return
/// its tag; the payload is `&scratch[1..]`.  Errors on EOF, short reads
/// and out-of-range lengths.
pub fn read_frame(r: &mut impl Read, scratch: &mut Vec<u8>) -> io::Result<u8> {
    let mut lenb = [0u8; 4];
    r.read_exact(&mut lenb)?;
    let len = u32::from_le_bytes(lenb) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    scratch.resize(len, 0);
    r.read_exact(scratch)?;
    Ok(scratch[0])
}

/// Send the connection handshake: the connector's node id.
pub fn write_handshake(w: &mut impl Write, me: NodeId) -> io::Result<()> {
    debug_assert!(me <= u32::MAX as usize);
    w.write_all(&(me as u32).to_le_bytes())
}

/// Receive the connection handshake, validating the id against `n`.
pub fn read_handshake(r: &mut impl Read, n: usize) -> io::Result<NodeId> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    let id = u32::from_le_bytes(b) as usize;
    if id >= n {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("handshake node id {id} out of range 0..{n}"),
        ));
    }
    Ok(id)
}

/// Split a [`TAG_RDATA`] payload (`scratch[1..]`) into `(seq, ack, body)`.
/// Errors on a short payload.
pub fn split_rdata(payload: &[u8]) -> io::Result<(u64, u64, &[u8])> {
    if payload.len() < RDATA_HEADER {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("rdata payload too short: {} bytes", payload.len()),
        ));
    }
    let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
    let ack = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    Ok((seq, ack, &payload[RDATA_HEADER..]))
}

/// Incremental frame decoder for nonblocking sockets.
///
/// [`read_frame`] assumes it may block until a whole frame arrives — fine
/// for one reader thread per connection, useless under a readiness-polled
/// reactor where a read returns *whatever bytes the kernel has*, cutting
/// frames anywhere (mid-length-word, mid-payload, three frames at once).
/// `FrameBuf` accumulates those arbitrary chunks and yields complete
/// frames in the same `scratch` convention as [`read_frame`]: the body
/// (tag at `[0]`, payload after) with the length word stripped.
///
/// The length prefix is validated **before** its frame is awaited, so a
/// poisoned length word kills the connection immediately instead of
/// stalling it waiting for gigabytes that never come.
#[derive(Debug, Default)]
pub struct FrameBuf {
    /// Backing storage.  Its *length* is a zero-initialized high-water
    /// mark, never shrunk: valid bytes live at `buf[pos..end]`, and reads
    /// land into already-initialized space past `end`.  Tracking `end`
    /// separately (instead of `truncate` + `resize` around every read)
    /// matters because `Vec::resize` re-zeroes everything past the len —
    /// a 16 KiB memset *per read syscall* on the reactor's hot path.
    buf: Vec<u8>,
    /// Start of undecoded bytes in `buf`; everything before is consumed.
    pos: usize,
    /// End of valid bytes in `buf`.
    end: usize,
}

/// Bytes asked of the kernel per [`FrameBuf::read_from`] call.
pub const READ_CHUNK: usize = 16 * 1024;

/// Consumed-prefix size past which the incremental buffers slide their
/// live bytes back to the front.  Compacting on *every* operation would
/// pay a `copy_within` per read/write; waiting until the dead prefix
/// reaches this threshold amortizes the copy to O(1) per consumed byte
/// while still bounding the prefix.
pub const COMPACT_THRESHOLD: usize = 4 * 1024;

/// High-water storage a buffer keeps across bursts.  A transient backlog
/// (a slow consumer, a retransmission storm) can legitimately grow the
/// backing store far past steady state; once the backlog drains, storage
/// beyond this bound is returned to the allocator instead of staying
/// resident for the lifetime of the connection.  Sized so steady-state
/// operation never touches it: the largest undecoded tail (one maximal
/// frame) plus one read chunk plus the compaction threshold.
pub const RETAIN_LIMIT: usize = COMPACT_THRESHOLD + HEADER + MAX_FRAME + READ_CHUNK;

impl FrameBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Issue **one** `read` against `r`, appending whatever arrives.
    /// Returns the byte count: `Ok(0)` is EOF.  `WouldBlock` propagates
    /// to the caller (the reactor treats it as "drained for now").
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        self.compact();
        // One syscall-sized chunk per call; the reactor loops while the
        // socket stays readable, so throughput doesn't hinge on this size.
        // Growing past the high-water mark zeroes new space once, ever.
        if self.buf.len() < self.end + READ_CHUNK {
            self.buf.resize(self.end + READ_CHUNK, 0);
        }
        let n = r.read(&mut self.buf[self.end..self.end + READ_CHUNK])?;
        self.end += n;
        Ok(n)
    }

    /// Decode the next complete frame into `scratch`, returning its tag —
    /// or `Ok(None)` if the buffered bytes don't yet hold a whole frame.
    /// Mirrors [`read_frame`]'s contract: `scratch` ends up holding the
    /// frame body, payload at `&scratch[1..]`.
    pub fn next_frame_into(&mut self, scratch: &mut Vec<u8>) -> io::Result<Option<u8>> {
        let avail = &self.buf[self.pos..self.end];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes")) as usize;
        if len == 0 || len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} out of range"),
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        scratch.clear();
        scratch.extend_from_slice(&avail[4..4 + len]);
        self.pos += 4 + len;
        Ok(Some(scratch[0]))
    }

    /// Bytes buffered but not yet decoded (partial frame tail).
    pub fn pending(&self) -> usize {
        self.end - self.pos
    }

    /// Bytes of backing storage currently held (the high-water mark, not
    /// the live span).  Bounded by [`RETAIN_LIMIT`] whenever the decode
    /// side keeps up — the regression guard `prop_frame.rs` asserts.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Slide unconsumed bytes to the front so the buffer doesn't grow
    /// without bound on a long-lived connection.  A fully drained buffer
    /// resets for free; otherwise the `copy_within` (at most one partial
    /// frame) runs only once the dead prefix passes [`COMPACT_THRESHOLD`],
    /// amortizing it.  Draining also releases burst storage past
    /// [`RETAIN_LIMIT`] — without this a single backlog spike would pin
    /// its high-water allocation for the connection's lifetime.
    fn compact(&mut self) {
        if self.pos == self.end {
            self.pos = 0;
            self.end = 0;
            // Gate on capacity, not length: amortized `Vec` growth can
            // leave the allocation ~2× the high-water length, and it is
            // the allocation this bound is about.
            if self.buf.capacity() > RETAIN_LIMIT {
                self.buf.truncate(RETAIN_LIMIT);
                self.buf.shrink_to(RETAIN_LIMIT);
            }
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buf.copy_within(self.pos..self.end, 0);
            self.end -= self.pos;
            self.pos = 0;
        }
    }
}

/// Outbound byte queue with partial-write tracking, the write-side twin
/// of [`FrameBuf`].
///
/// The reactor parks unflushed frames per connection: [`queue`] appends
/// encoded bytes, [`unwritten`] exposes the tail still owed to the
/// kernel, [`consume`] advances past what `write(2)` accepted.  A slow
/// peer keeps the queue non-empty indefinitely, so the consumed prefix
/// is reclaimed once it exceeds [`COMPACT_THRESHOLD`] — the naive
/// cursor-into-a-`Vec` it replaces only reclaimed on full drain, which a
/// peer that never quite catches up never triggers: every byte ever
/// parked stayed resident (see the `writebuf_slow_peer_stays_bounded`
/// regression).
///
/// [`queue`]: WriteBuf::queue
/// [`unwritten`]: WriteBuf::unwritten
/// [`consume`]: WriteBuf::consume
#[derive(Debug, Default)]
pub struct WriteBuf {
    buf: Vec<u8>,
    /// Bytes already accepted by the kernel; `buf[pos..]` is owed.
    pos: usize,
}

impl WriteBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes to the tail of the queue.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// The bytes still owed to the kernel.
    pub fn unwritten(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Count of bytes still owed.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when nothing is owed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Advance past `n` bytes the kernel accepted.  Compacts the consumed
    /// prefix past [`COMPACT_THRESHOLD`] and releases burst storage past
    /// [`RETAIN_LIMIT`] on full drain.
    pub fn consume(&mut self, n: usize) {
        self.pos += n;
        debug_assert!(self.pos <= self.buf.len());
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.buf.capacity() > RETAIN_LIMIT {
                self.buf.shrink_to(RETAIN_LIMIT);
            }
        } else if self.pos >= COMPACT_THRESHOLD {
            let len = self.buf.len();
            self.buf.copy_within(self.pos..len, 0);
            self.buf.truncate(len - self.pos);
            self.pos = 0;
        }
    }

    /// Drop everything, owed or not (link teardown).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
        if self.buf.capacity() > RETAIN_LIMIT {
            self.buf.shrink_to(RETAIN_LIMIT);
        }
    }

    /// Bytes of backing storage currently held.  Bounded by the live
    /// backlog plus [`COMPACT_THRESHOLD`] — *not* by the total bytes ever
    /// queued, which is the property the compaction buys.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Parse a [`TAG_RACK`] payload (`scratch[1..]`) into its ack value.
pub fn split_rack(payload: &[u8]) -> io::Result<u64> {
    if payload.len() != 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("rack payload must be 8 bytes, got {}", payload.len()),
        ));
    }
    Ok(u64::from_le_bytes(payload.try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_MSG, b"hello").unwrap();
        write_frame(&mut wire, TAG_SHUTDOWN, b"").unwrap();
        let mut r = Cursor::new(wire);
        let mut scratch = Vec::new();
        assert_eq!(read_frame(&mut r, &mut scratch).unwrap(), TAG_MSG);
        assert_eq!(&scratch[1..], b"hello");
        assert_eq!(read_frame(&mut r, &mut scratch).unwrap(), TAG_SHUTDOWN);
        assert_eq!(scratch.len(), 1);
        // EOF afterwards.
        assert!(read_frame(&mut r, &mut scratch).is_err());
    }

    #[test]
    fn buffer_built_frame_matches_write_frame() {
        let mut streamed = Vec::new();
        write_frame(&mut streamed, TAG_MSG, b"abc").unwrap();
        let mut built = Vec::new();
        begin_frame(&mut built);
        built.extend_from_slice(b"abc");
        end_frame(&mut built, TAG_MSG);
        assert_eq!(streamed, built);
    }

    #[test]
    fn zero_and_oversized_lengths_rejected() {
        let mut scratch = Vec::new();
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut Cursor::new(zero), &mut scratch).is_err());
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(read_frame(&mut Cursor::new(huge), &mut scratch).is_err());
    }

    #[test]
    fn poisoned_length_prefix_is_rejected_before_allocation() {
        // A corrupted/hostile length word (e.g. ASCII noise or 0xFFFFFFFF
        // from a misframed stream) must produce a decode error without the
        // scratch buffer ever growing toward the bogus size.
        for poison in [u32::MAX, 0x7FFF_FFFF, 0x2020_2020, MAX_FRAME as u32 + 1] {
            let mut wire = poison.to_le_bytes().to_vec();
            wire.extend_from_slice(&[0u8; 64]); // some trailing garbage
            let mut scratch = Vec::new();
            let err = read_frame(&mut Cursor::new(wire), &mut scratch)
                .expect_err("poisoned length must be rejected");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{poison:#x}");
            assert!(
                scratch.capacity() <= MAX_FRAME,
                "scratch grew to {} for poisoned length {poison:#x}",
                scratch.capacity()
            );
        }
        // The cap itself is still a valid length.
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_MSG, &vec![7u8; MAX_FRAME - 1]).unwrap();
        let mut scratch = Vec::new();
        assert_eq!(read_frame(&mut Cursor::new(wire), &mut scratch).unwrap(), TAG_MSG);
        assert_eq!(scratch.len(), MAX_FRAME);
    }

    #[test]
    fn rdata_and_rack_payloads_roundtrip() {
        let mut buf = Vec::new();
        begin_frame(&mut buf);
        buf.extend_from_slice(&42u64.to_le_bytes());
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(b"payload");
        end_frame(&mut buf, TAG_RDATA);
        let mut scratch = Vec::new();
        let tag = read_frame(&mut Cursor::new(&buf), &mut scratch).unwrap();
        assert_eq!(tag, TAG_RDATA);
        let (seq, ack, body) = split_rdata(&scratch[1..]).unwrap();
        assert_eq!((seq, ack), (42, 7));
        assert_eq!(body, b"payload");
        assert!(split_rdata(&scratch[1..9]).is_err(), "short rdata rejected");

        let mut ackf = Vec::new();
        write_frame(&mut ackf, TAG_RACK, &9u64.to_le_bytes()).unwrap();
        let tag = read_frame(&mut Cursor::new(&ackf), &mut scratch).unwrap();
        assert_eq!(tag, TAG_RACK);
        assert_eq!(split_rack(&scratch[1..]).unwrap(), 9);
        assert!(split_rack(b"short").is_err());
    }

    #[test]
    fn framebuf_decodes_across_arbitrary_chunk_boundaries() {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_MSG, b"hello").unwrap();
        write_frame(&mut wire, TAG_RACK, &9u64.to_le_bytes()).unwrap();
        write_frame(&mut wire, TAG_DONE, b"").unwrap();
        // Feed one byte at a time — the worst possible dribble.
        let mut fb = FrameBuf::new();
        let mut scratch = Vec::new();
        let mut got = Vec::new();
        for b in &wire {
            let mut one = Cursor::new(std::slice::from_ref(b));
            assert_eq!(fb.read_from(&mut one).unwrap(), 1);
            while let Some(tag) = fb.next_frame_into(&mut scratch).unwrap() {
                got.push((tag, scratch[1..].to_vec()));
            }
        }
        assert_eq!(
            got,
            vec![
                (TAG_MSG, b"hello".to_vec()),
                (TAG_RACK, 9u64.to_le_bytes().to_vec()),
                (TAG_DONE, vec![]),
            ]
        );
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn framebuf_decodes_many_frames_from_one_read() {
        let mut wire = Vec::new();
        for i in 0..10u8 {
            write_frame(&mut wire, TAG_MSG, &[i; 3]).unwrap();
        }
        let mut fb = FrameBuf::new();
        let mut r = Cursor::new(&wire);
        assert_eq!(fb.read_from(&mut r).unwrap(), wire.len());
        let mut scratch = Vec::new();
        for i in 0..10u8 {
            assert_eq!(fb.next_frame_into(&mut scratch).unwrap(), Some(TAG_MSG));
            assert_eq!(&scratch[1..], &[i; 3]);
        }
        assert_eq!(fb.next_frame_into(&mut scratch).unwrap(), None);
    }

    #[test]
    fn framebuf_rejects_poisoned_length_before_waiting_for_payload() {
        for poison in [0u32, u32::MAX, MAX_FRAME as u32 + 1] {
            let mut fb = FrameBuf::new();
            let bytes = poison.to_le_bytes();
            fb.read_from(&mut Cursor::new(&bytes)).unwrap();
            let mut scratch = Vec::new();
            let err = fb
                .next_frame_into(&mut scratch)
                .expect_err("poisoned length must fail immediately");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{poison:#x}");
        }
    }

    #[test]
    fn framebuf_releases_burst_storage_after_drain() {
        // A consumer that stalls while 4 MiB of frames pile up must not
        // pin that high-water allocation forever: once the backlog
        // drains, the next read cycle returns the burst storage.  This
        // fails without the RETAIN_LIMIT shrink in `compact` — the
        // high-water `buf` was never reduced.
        let mut frame = Vec::new();
        write_frame(&mut frame, TAG_MSG, &vec![7u8; MAX_FRAME - 1]).unwrap();
        let mut wire = Vec::new();
        for _ in 0..64 {
            wire.extend_from_slice(&frame);
        }
        let mut fb = FrameBuf::new();
        let mut r = Cursor::new(&wire);
        // Stalled consumer: read everything without decoding a frame.
        while fb.read_from(&mut r).unwrap() > 0 {}
        assert!(
            fb.capacity() >= wire.len(),
            "burst did not reach the buffer: {} < {}",
            fb.capacity(),
            wire.len()
        );
        // Consumer catches up, then the connection keeps running.
        let mut scratch = Vec::new();
        while fb.next_frame_into(&mut scratch).unwrap().is_some() {}
        assert_eq!(fb.pending(), 0);
        let mut tail = Cursor::new(&frame);
        while fb.read_from(&mut tail).unwrap() > 0 {
            while fb.next_frame_into(&mut scratch).unwrap().is_some() {}
        }
        assert!(
            fb.capacity() <= RETAIN_LIMIT + READ_CHUNK,
            "burst storage retained after drain: {} > {}",
            fb.capacity(),
            RETAIN_LIMIT + READ_CHUNK
        );
    }

    #[test]
    fn writebuf_slow_peer_stays_bounded() {
        // A peer that accepts exactly what we produce but never fully
        // drains the queue (one frame always parked).  The cursor-only
        // scheme this replaces grew the buffer by 64 bytes per cycle —
        // ~6 MiB over this loop, unbounded over a connection's lifetime.
        let mut wb = WriteBuf::new();
        let frame = [0xABu8; 64];
        wb.queue(&frame); // one frame permanently in flight
        for _ in 0..100_000 {
            wb.queue(&frame);
            wb.consume(frame.len()); // kernel accepts one frame per pass
            assert_eq!(wb.pending(), frame.len());
        }
        assert!(!wb.is_empty(), "the peer was never supposed to catch up");
        // The live backlog is one frame; the resident allocation may
        // reach the compaction threshold plus `Vec`'s amortized-doubling
        // slack, but no more — and crucially it stops growing there.
        assert!(
            wb.capacity() <= 2 * (COMPACT_THRESHOLD + 16 * frame.len()),
            "consumed prefix never reclaimed: {} bytes resident",
            wb.capacity()
        );
        // Full drain resets and releases.
        let owed = wb.pending();
        wb.consume(owed);
        assert!(wb.is_empty());
        assert_eq!(wb.pending(), 0);
    }

    #[test]
    fn writebuf_consume_queue_interleave_preserves_bytes() {
        // The compaction must be invisible to the byte stream: whatever
        // interleaving of queue/consume happens, the bytes coming out of
        // `unwritten` are exactly the bytes queued, in order.
        let mut wb = WriteBuf::new();
        let mut expect = std::collections::VecDeque::new();
        let mut x = 1u64;
        for step in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let chunk: Vec<u8> = (0..(x % 97) as u8).map(|i| i ^ step as u8).collect();
            wb.queue(&chunk);
            expect.extend(chunk.iter().copied());
            let take = ((x >> 32) as usize % 128).min(wb.pending());
            let got: Vec<u8> = wb.unwritten()[..take].to_vec();
            for b in got {
                assert_eq!(Some(b), expect.pop_front(), "byte stream corrupted");
            }
            wb.consume(take);
        }
        assert_eq!(wb.pending(), expect.len());
    }

    #[test]
    fn handshake_roundtrip_and_validation() {
        let mut wire = Vec::new();
        write_handshake(&mut wire, 6).unwrap();
        assert_eq!(read_handshake(&mut Cursor::new(&wire), 8).unwrap(), 6);
        assert!(read_handshake(&mut Cursor::new(&wire), 6).is_err());
    }
}
