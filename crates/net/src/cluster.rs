//! Cluster harnesses: spawn protocol nodes over the TCP mesh and collect
//! the same [`RunResult`] metrics as the simulator and the mpsc runtime.
//!
//! Two deployment shapes share all the machinery:
//!
//! * [`run_tcp_cluster`] — N nodes as threads of one process, connected
//!   through real loopback sockets.  Safety is checked by the shared
//!   [`SafetyMonitor`](mra_protocol::testkit::SafetyMonitor) exactly like
//!   the other substrates, which makes this the integration point for
//!   wire-level testing: same assertions, real TCP underneath.
//! * [`run_solo_node`] — one node of a multi-process (or multi-host)
//!   cluster, addressed through an explicit [`PeerDirectory`].  Each
//!   process reports its own local metrics; cross-process safety is
//!   enforced by the protocols themselves (the monitor can only see the
//!   local node).

use crate::reactor::{connect_reactor_mesh, ReactorPort};
use crate::sys;
use crate::transport::{
    connect_mesh, MeshConfig, NetBackend, PeerDirectory, PortCtrl, TcpPort,
};
use mra_obs::NetCounters;
use mra_protocol::faults::FaultPlan;
use mra_protocol::reliable::Reliability;
use mra_protocol::{Allocator, WireCodec};
use mra_sim::runtime::{drive_node, NodeCfg, RunShared};
use mra_sim::{RunResult, Workload};
use mra_types::{NodeId, Time};
use std::io;
use std::net::TcpListener;
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a loopback TCP cluster run.
#[derive(Clone, Debug)]
pub struct TcpClusterConfig {
    /// Request/CS cycles per active node.
    pub rounds: usize,
    /// Master seed for workload randomness.
    pub seed: u64,
    /// Artificial latency added on top of the real wire (`Time::ZERO`
    /// measures the raw transport).
    pub extra_latency: Time,
    /// Only nodes `0..active` issue requests (`None` = all).
    pub active_nodes: Option<usize>,
    /// Frame-level fault shim (see [`MeshConfig::faults`]).  A *lossy* plan
    /// on a quota-based cluster run with `reliability` off can stall it
    /// forever — lost tokens are never retransmitted; pair lossy plans
    /// with [`TcpClusterConfig::reliability`] (drops are then recovered)
    /// or keep them for bounded transport experiments.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery session layer (see [`MeshConfig::reliability`]):
    /// sequence numbers, cumulative acks and timer-driven retransmission
    /// around the frame codec, restoring exactly-once FIFO delivery under
    /// a lossy `faults` shim.
    pub reliability: Option<Reliability>,
    /// Per-node transport counter dump to stderr when each port shuts
    /// down (see [`MeshConfig::metrics`]).
    pub metrics: bool,
    /// Which transport moves the frames ([`NetBackend::from_env`] by
    /// default: the reactor on unix, overridable with `MRA_NET_REACTOR` /
    /// `MRA_NET_THREADS`).
    pub backend: NetBackend,
}

impl TcpClusterConfig {
    /// `rounds` cycles on every node, no artificial latency, no faults,
    /// transport backend from the environment.
    pub fn new(rounds: usize, seed: u64) -> Self {
        TcpClusterConfig {
            rounds,
            seed,
            extra_latency: Time::ZERO,
            active_nodes: None,
            faults: None,
            reliability: None,
            metrics: false,
            backend: NetBackend::from_env(),
        }
    }
}

/// Connect the chosen backend's mesh and drive the node loop over it.
/// The two port types are distinct (one owns reader threads, the other a
/// reactor handle), so the dispatch happens here — once — instead of at
/// every harness.
#[allow(clippy::too_many_arguments)]
fn drive_over_backend<A, W>(
    backend: NetBackend,
    me: NodeId,
    n: usize,
    listener: TcpListener,
    dir: &PeerDirectory,
    ctrl: PortCtrl,
    mesh: MeshConfig,
    proto: A,
    workload: W,
    shared: &RunShared,
    node_cfg: NodeCfg,
) -> io::Result<()>
where
    A: Allocator + Send + 'static,
    A::Msg: WireCodec,
    W: Workload + 'static,
{
    match backend {
        NetBackend::Reactor => {
            let port: ReactorPort<A::Msg> =
                connect_reactor_mesh(me, listener, dir, ctrl, mesh)?;
            drive_node(me, n, proto, workload, port, shared, node_cfg);
        }
        NetBackend::Threaded => {
            let port: TcpPort<A::Msg> = connect_mesh(me, listener, dir, ctrl, mesh)?;
            drive_node(me, n, proto, workload, port, shared, node_cfg);
        }
    }
    Ok(())
}

/// File descriptors an `n`-node loopback cluster needs inside one
/// process, with headroom: both connection endpoints live here, plus
/// listeners, wake pipes and poller fds.  The threaded topology's
/// `2·n·(n-1)` endpoints dominate; the reactor halves that but the bound
/// must cover whichever backend runs.
fn fd_budget(n: usize) -> u64 {
    (2 * n * n + 6 * n + 64) as u64
}

/// Run `protos` as an N-node cluster over loopback TCP until every active
/// node has completed its round quota; returns the collected metrics.
///
/// Mirrors [`mra_sim::run_threaded`] — same workload driver, same safety
/// monitoring, same metrics — with the mpsc channels swapped for real
/// sockets and the wire codec in between.
///
/// # Panics
/// On any safety violation, and on transport setup failure (a loopback
/// bind/connect failing means the host is misconfigured).
pub fn run_tcp_cluster<A, W>(
    protos: Vec<A>,
    workloads: Vec<W>,
    m: usize,
    cfg: TcpClusterConfig,
) -> RunResult
where
    A: Allocator + Send + 'static,
    A::Msg: WireCodec,
    W: Workload + 'static,
{
    let n = protos.len();
    assert_eq!(n, workloads.len());
    assert!(cfg.rounds >= 1, "a quota-based run needs at least one round");
    let active = cfg.active_nodes.unwrap_or(n);
    assert!(active >= 1 && active <= n);

    // Bind every listener up front so the concurrent connect phase cannot
    // race a missing acceptor (see `connect_mesh`).
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback listener"))
        .collect();
    let dir = PeerDirectory::new(
        listeners
            .iter()
            .map(|l| l.local_addr().expect("listener addr"))
            .collect(),
    );

    // Big meshes exceed the default soft RLIMIT_NOFILE long before they
    // exceed the hard one; bump it best-effort (256 nodes ≈ 66 k fds).
    let _ = sys::raise_nofile_limit(fd_budget(n));

    let shared = Arc::new(RunShared::new(n, m));
    let remaining = Arc::new(AtomicUsize::new(active));
    // One counters slot per node: each port publishes its transport
    // tallies there (reactor: every iteration; threaded: on drop) and the
    // harness folds them into the run's observability report.
    let slots: Vec<Arc<Mutex<NetCounters>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(NetCounters::default())))
        .collect();
    let mesh = MeshConfig {
        extra_latency: cfg.extra_latency,
        connect_timeout: Duration::from_secs(10),
        faults: cfg.faults.clone(),
        reliability: cfg.reliability,
        metrics: cfg.metrics,
        counters_slot: None,
    };

    let algo = protos[0].name().to_string();
    let mut handles = Vec::with_capacity(n);
    for (i, ((proto, workload), listener)) in protos
        .into_iter()
        .zip(workloads)
        .zip(listeners)
        .enumerate()
    {
        let shared = Arc::clone(&shared);
        let dir = dir.clone();
        let remaining = Arc::clone(&remaining);
        let mesh = MeshConfig {
            counters_slot: Some(Arc::clone(&slots[i])),
            ..mesh.clone()
        };
        let backend = cfg.backend;
        let node_cfg = NodeCfg {
            rounds: cfg.rounds,
            seed: cfg.seed,
            is_active: i < active,
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("mra-tcp-node-{i}"))
                .spawn(move || {
                    drive_over_backend(
                        backend,
                        i,
                        n,
                        listener,
                        &dir,
                        PortCtrl::Cluster(remaining),
                        mesh,
                        proto,
                        workload,
                        &shared,
                        node_cfg,
                    )
                    .expect("TCP mesh setup");
                })
                .expect("spawn node thread"),
        );
    }
    for h in handles {
        h.join().expect("node thread panicked");
    }

    let end = shared.now();
    let shared = Arc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("thread leaked a RunShared reference"));
    let mut obs = shared.finish_obs();
    for slot in &slots {
        obs.net.merge(&slot.lock().unwrap_or_else(|e| e.into_inner()));
    }
    // Post-run conservation: every node finished outside its CS, so the
    // holder table must be empty — a leak here means a grant/release pair
    // corrupted it (the monitor's exit check is a hard assert in release
    // builds exactly so this cannot pass silently).
    let monitor = shared
        .monitor
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    assert_eq!(monitor.concurrency(), 0, "node left inside CS after the run");
    assert_eq!(monitor.held_resources(), 0, "resources leaked after the run");
    monitor.assert_conservation();
    let mut res = shared
        .collector
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .finish(&algo, n, end);
    res.obs = obs;
    res
}

/// Configuration of one standalone node in a multi-process cluster.
#[derive(Clone, Debug)]
pub struct SoloConfig {
    /// Request/CS cycles per active node.
    pub rounds: usize,
    /// Master seed (must match across all processes of the cluster).
    pub seed: u64,
    /// Artificial latency on top of the real wire.
    pub extra_latency: Time,
    /// Number of request-issuing nodes, `0..active`.  Node 0 must be
    /// active: it coordinates the distributed shutdown.
    pub active: usize,
    /// How long to keep retrying connections while peers start up.
    pub connect_timeout: Duration,
    /// Frame-level fault shim for this node's inbound links (see
    /// [`MeshConfig::faults`]); every process must install the same plan
    /// for the cluster-wide fault pattern to be coherent.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery session layer (see [`MeshConfig::reliability`]);
    /// every process must enable it for the session framing to be
    /// coherent (`MRA_RELIABLE=1` across the cluster).
    pub reliability: Option<Reliability>,
    /// Transport counter dump to stderr when the port shuts down (see
    /// [`MeshConfig::metrics`]; `mra-node --metrics` / `MRA_METRICS=1`).
    pub metrics: bool,
    /// Which transport moves the frames (`MRA_NET_REACTOR` /
    /// `MRA_NET_THREADS` via [`NetBackend::from_env`]).  Backends
    /// interoperate on the wire only within the same topology, so every
    /// process of one cluster must choose the same backend.
    pub backend: NetBackend,
}

/// Run node `me` of a multi-process cluster on the current thread,
/// binding `dir.addr(me)` and meshing with every peer in `dir`.
///
/// Returns this node's local metrics once the cluster-wide shutdown
/// (coordinated through `Done` frames at node 0) releases it.
pub fn run_solo_node<A, W>(
    me: NodeId,
    proto: A,
    workload: W,
    m: usize,
    dir: &PeerDirectory,
    cfg: SoloConfig,
) -> io::Result<RunResult>
where
    A: Allocator + Send + 'static,
    A::Msg: WireCodec,
    W: Workload + 'static,
{
    let n = dir.len();
    assert!(me < n, "node id {me} outside directory 0..{n}");
    assert!(cfg.rounds >= 1, "a quota-based run needs at least one round");
    assert!(cfg.active >= 1 && cfg.active <= n);

    let listener = TcpListener::bind(dir.addr(me))?;
    let _ = sys::raise_nofile_limit((4 * n + 64) as u64);
    let shared = RunShared::new(n, m);
    let algo = proto.name().to_string();
    let slot = Arc::new(Mutex::new(NetCounters::default()));
    let node_cfg = NodeCfg {
        rounds: cfg.rounds,
        seed: cfg.seed,
        is_active: me < cfg.active,
    };
    drive_over_backend(
        cfg.backend,
        me,
        n,
        listener,
        dir,
        PortCtrl::Solo {
            active: cfg.active,
            done_seen: 0,
            self_done: false,
        },
        MeshConfig {
            extra_latency: cfg.extra_latency,
            connect_timeout: cfg.connect_timeout,
            faults: cfg.faults.clone(),
            reliability: cfg.reliability,
            metrics: cfg.metrics,
            counters_slot: Some(Arc::clone(&slot)),
        },
        proto,
        workload,
        &shared,
        node_cfg,
    )?;

    let end = shared.now();
    let mut obs = shared.finish_obs();
    obs.net.merge(&slot.lock().unwrap_or_else(|e| e.into_inner()));
    let mut res = shared
        .collector
        .into_inner()
        .unwrap_or_else(|e| e.into_inner())
        .finish(&algo, n, end);
    res.obs = obs;
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mra_core::LassConfig;
    use mra_sim::FixedWorkload;

    fn quick_workloads(n: usize, m: usize, size: usize) -> Vec<FixedWorkload> {
        (0..n)
            .map(|_| FixedWorkload {
                think: Time::from_micros(200),
                cs: Time::from_micros(300),
                m,
                size,
            })
            .collect()
    }

    #[test]
    fn lass_runs_over_loopback_tcp() {
        let cfg = LassConfig::with_loan(4, 8);
        let res = run_tcp_cluster(
            cfg.build_nodes(),
            quick_workloads(4, 8, 2),
            8,
            TcpClusterConfig::new(5, 11),
        );
        assert_eq!(res.cs_completed, 20);
        assert_eq!(res.censored, 0);
        assert_eq!(res.wait_stats().count, 20);
        assert!(res.msgs_total > 0);
    }

    #[test]
    fn dup_only_fault_shim_costs_no_critical_section() {
        // A non-lossy plan is safe on a quota run: every duplicate verdict
        // is absorbed at the receiver, the cluster completes its quota and
        // the holder table stays conserved (asserted inside the harness).
        let cfg = LassConfig::with_loan(4, 8);
        let res = run_tcp_cluster(
            cfg.build_nodes(),
            quick_workloads(4, 8, 2),
            8,
            TcpClusterConfig {
                faults: Some(FaultPlan::new(77).dup_rate(0.5)),
                ..TcpClusterConfig::new(5, 11)
            },
        );
        assert_eq!(res.cs_completed, 20);
        assert_eq!(res.censored, 0);
    }

    #[test]
    fn lossy_shim_with_reliability_completes_the_quota() {
        // The model-level fix of PR 5 on the wire: a 20% drop shim used to
        // be forbidden on quota runs (lost tokens stall the cluster
        // forever); with the session layer every drop is retransmitted and
        // the run completes with zero safety violations and a conserved
        // holder table (asserted inside the harness).
        let cfg = LassConfig::with_loan(4, 8);
        let res = run_tcp_cluster(
            cfg.build_nodes(),
            quick_workloads(4, 8, 2),
            8,
            TcpClusterConfig {
                faults: Some(FaultPlan::new(0xFA17).drop_rate(0.2).dup_rate(0.1)),
                reliability: Some(Reliability::with_rto(Time::from_millis(2))),
                ..TcpClusterConfig::new(5, 11)
            },
        );
        assert_eq!(res.cs_completed, 20);
        assert_eq!(res.censored, 0);
    }

    #[test]
    fn extra_latency_slows_the_wire() {
        let mk = || LassConfig::with_loan(3, 4).build_nodes();
        let fast = run_tcp_cluster(
            mk(),
            quick_workloads(3, 4, 2),
            4,
            TcpClusterConfig::new(4, 5),
        );
        let slow = run_tcp_cluster(
            mk(),
            quick_workloads(3, 4, 2),
            4,
            TcpClusterConfig {
                extra_latency: Time::from_millis(2),
                ..TcpClusterConfig::new(4, 5)
            },
        );
        assert_eq!(fast.cs_completed, slow.cs_completed);
        // With 2 ms per hop the contended waits must be visibly longer.
        assert!(
            slow.wait_stats().mean_ms >= fast.wait_stats().mean_ms,
            "latency emulation had no effect: fast {} vs slow {}",
            fast.wait_stats().mean_ms,
            slow.wait_stats().mean_ms
        );
    }

    /// Find `n` consecutive free ports below the kernel's ephemeral range
    /// (Linux auto-assigns from 32768 up, so nothing will grab these
    /// between the probe and `run_solo_node`'s own bind).  The base is
    /// salted with the pid so parallel test processes do not collide.
    fn probe_port_block(n: u16) -> u16 {
        let salt = (std::process::id() % 997) as u16 * 7;
        for base in (18000 + salt..30000).step_by(n as usize) {
            let probes: Vec<_> = (0..n)
                .map(|i| TcpListener::bind(("127.0.0.1", base + i)))
                .collect();
            if probes.iter().all(|p| p.is_ok()) {
                return base; // probes drop here, freeing the block
            }
        }
        panic!("no free port block for the solo cluster test");
    }

    #[test]
    fn solo_processes_complete_a_cluster() {
        // Three "processes" (threads running the solo path end to end,
        // each with its own listener, mesh and local metrics).
        let n = 3;
        let base = probe_port_block(n as u16);
        let dir = PeerDirectory::new(
            (0..n as u16)
                .map(|i| format!("127.0.0.1:{}", base + i).parse().unwrap())
                .collect(),
        );
        let mut handles = Vec::new();
        for i in 0..n {
            let dir = dir.clone();
            handles.push(std::thread::spawn(move || {
                let cfg = LassConfig::with_loan(n, 6);
                let workload = FixedWorkload {
                    think: Time::from_micros(200),
                    cs: Time::from_micros(300),
                    m: 6,
                    size: 2,
                };
                run_solo_node(
                    i,
                    cfg.build_nodes().remove(i),
                    workload,
                    6,
                    &dir,
                    SoloConfig {
                        rounds: 4,
                        seed: 3,
                        extra_latency: Time::ZERO,
                        active: n,
                        connect_timeout: Duration::from_secs(10),
                        faults: None,
                        reliability: None,
                        metrics: false,
                        backend: NetBackend::from_env(),
                    },
                )
                .expect("solo node run")
            }));
        }
        let results: Vec<RunResult> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, res) in results.iter().enumerate() {
            assert_eq!(res.cs_completed, 4, "node {i}");
            assert_eq!(res.censored, 0, "node {i}");
        }
    }
}
