//! The TCP mesh: per-peer framed connections implementing
//! [`mra_sim::NodePort`].
//!
//! Topology: every ordered node pair `(i, j)` gets its own connection,
//! opened by `i` and used only for `i → j` traffic.  One TCP stream per
//! direction gives per-link FIFO for free and sidesteps write-contention
//! on shared sockets.  Each inbound connection is drained by a dedicated
//! reader thread that decodes frames and forwards them to the node loop
//! over an internal channel; writes happen inline on the node thread
//! (loopback and LAN socket buffers absorb them without blocking).
//!
//! Shutdown is coordinated at the transport level so the shared runtime
//! loop stays substrate-agnostic:
//!
//! * **in-process clusters** ([`PortCtrl::Cluster`]) count finishers in a
//!   shared atomic — the last one broadcasts [`TAG_SHUTDOWN`] frames;
//! * **multi-process deployments** ([`PortCtrl::Solo`]) send [`TAG_DONE`]
//!   frames to node 0, which broadcasts the shutdown once every active
//!   node (itself included) has finished.
//!
//! A reader that hits EOF or a decode error injects a shutdown event
//! rather than wedging the node: peers only close links when the run is
//! over (or broken), and either way the node must exit.

use crate::frame::{
    read_frame, read_handshake, write_frame, write_handshake, TAG_DONE, TAG_MSG, TAG_SHUTDOWN,
};
use mra_protocol::faults::{FaultPlan, FrameFate, LinkFilter};
use mra_protocol::WireCodec;
use mra_sim::{NodePort, PortEvent};
use mra_types::{NodeId, Time};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cluster map: `NodeId → SocketAddr` for every node.
#[derive(Clone, Debug)]
pub struct PeerDirectory {
    addrs: Vec<SocketAddr>,
}

impl PeerDirectory {
    /// Directory over explicit addresses (index = node id).
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        assert!(!addrs.is_empty(), "empty peer directory");
        PeerDirectory { addrs }
    }

    /// Parse a comma-separated `host:port,host:port,…` list (the
    /// `mra-node --peers` format).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let addrs: Result<Vec<SocketAddr>, String> = spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<SocketAddr>()
                    .map_err(|e| format!("bad peer address {s:?}: {e}"))
            })
            .collect();
        let addrs = addrs?;
        if addrs.is_empty() {
            return Err("empty peer list".into());
        }
        Ok(PeerDirectory::new(addrs))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if the directory is empty (never: construction forbids it;
    /// present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Address of node `id`.
    pub fn addr(&self, id: NodeId) -> SocketAddr {
        self.addrs[id]
    }
}

/// How a [`TcpPort`] coordinates cluster-wide shutdown.
pub enum PortCtrl {
    /// In-process loopback cluster: finishers decrement the shared count;
    /// the last one broadcasts shutdown frames.
    Cluster(Arc<AtomicUsize>),
    /// One process per node: finishers report [`TAG_DONE`] to node 0,
    /// which broadcasts shutdown once all `active` nodes are done.
    Solo {
        /// Number of request-issuing nodes (`0..active`; node 0 included).
        active: usize,
        /// Done reports seen so far (node 0 only; includes itself).
        done_seen: usize,
        /// Has this node finished its own quota?
        self_done: bool,
    },
}

/// Transport-level event forwarded by reader threads to the node loop.
enum Inbound<M> {
    Msg {
        from: NodeId,
        deliver_at: Instant,
        msg: M,
    },
    Done,
    Shutdown,
}

/// A node's TCP connection bundle: implements [`NodePort`] over real
/// sockets.  Build one with [`connect_mesh`].
pub struct TcpPort<M> {
    me: NodeId,
    /// Outbound stream per peer (`None` at `me`).
    writers: Vec<Option<TcpStream>>,
    rx: mpsc::Receiver<Inbound<M>>,
    ctrl: PortCtrl,
    /// Reusable encode buffer (header + payload, written in one call).
    buf: Vec<u8>,
}

impl<M> TcpPort<M> {
    fn broadcast_shutdown(&mut self) {
        for w in self.writers.iter_mut().flatten() {
            let _ = write_frame(w, TAG_SHUTDOWN, &[]);
        }
    }

    /// Translate a transport event; `None` means "keep receiving" (a
    /// control frame that did not end the run).
    fn translate(&mut self, inb: Inbound<M>) -> Option<PortEvent<M>> {
        match inb {
            Inbound::Msg { from, deliver_at, msg } => {
                Some(PortEvent::Msg { from, deliver_at, msg })
            }
            Inbound::Shutdown => Some(PortEvent::Shutdown),
            Inbound::Done => {
                let finished = match &mut self.ctrl {
                    PortCtrl::Solo { active, done_seen, self_done } => {
                        *done_seen += 1;
                        *self_done && *done_seen >= *active
                    }
                    // Done frames only flow in solo deployments.
                    PortCtrl::Cluster(_) => false,
                };
                if finished {
                    self.broadcast_shutdown();
                    return Some(PortEvent::Shutdown);
                }
                None
            }
        }
    }
}

impl<M: WireCodec + Send> NodePort<M> for TcpPort<M> {
    fn send(&mut self, to: NodeId, msg: M) {
        crate::frame::begin_frame(&mut self.buf);
        msg.encode(&mut self.buf);
        crate::frame::end_frame(&mut self.buf, TAG_MSG);
        if let Some(w) = self.writers[to].as_mut() {
            // Failures mean the peer is past shutdown; the run is over.
            let _ = io::Write::write_all(w, &self.buf);
        }
    }

    fn recv(&mut self) -> PortEvent<M> {
        loop {
            match self.rx.recv() {
                Err(_) => return PortEvent::Shutdown,
                Ok(inb) => {
                    if let Some(ev) = self.translate(inb) {
                        return ev;
                    }
                }
            }
        }
    }

    fn recv_deadline(&mut self, deadline: Instant) -> PortEvent<M> {
        loop {
            let wait = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(wait) {
                Err(mpsc::RecvTimeoutError::Timeout) => return PortEvent::TimedOut,
                Err(mpsc::RecvTimeoutError::Disconnected) => return PortEvent::Shutdown,
                Ok(inb) => {
                    if let Some(ev) = self.translate(inb) {
                        return ev;
                    }
                }
            }
        }
    }

    fn quota_done(&mut self) -> bool {
        enum Act {
            LastFinisher,
            ReportDone,
            Wait,
        }
        let act = match &mut self.ctrl {
            PortCtrl::Cluster(remaining) => {
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    Act::LastFinisher
                } else {
                    Act::Wait
                }
            }
            PortCtrl::Solo { active, done_seen, self_done } => {
                *self_done = true;
                if self.me == 0 {
                    *done_seen += 1;
                    if *done_seen >= *active {
                        Act::LastFinisher
                    } else {
                        Act::Wait
                    }
                } else {
                    Act::ReportDone
                }
            }
        };
        match act {
            Act::LastFinisher => {
                self.broadcast_shutdown();
                true
            }
            Act::ReportDone => {
                if let Some(w) = self.writers[0].as_mut() {
                    let _ = write_frame(w, TAG_DONE, &[]);
                }
                false
            }
            Act::Wait => false,
        }
    }
}

/// Mesh construction parameters.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Artificial latency added on top of the real wire (delivery of each
    /// message is deferred by this much at the receiver).  `Time::ZERO`
    /// measures the raw transport.  Together with `faults` this forms the
    /// frame-level drop/delay shim.
    pub extra_latency: Time,
    /// How long to keep retrying outbound connections (peers of a
    /// multi-process cluster may start later than this node).
    pub connect_timeout: Duration,
    /// Frame-level fault shim: each inbound link runs the plan's
    /// deterministic per-link drop filter (`k`-th frame on a link sees the
    /// same verdict as on the simulated substrates).  What TCP cannot
    /// reproduce: duplicate frames (the kernel's sequence numbers already
    /// absorb them, so dup verdicts are ignored here — unlike the
    /// simulated substrates nothing aggregates per-reader counters into
    /// `RunResult::faults`) and time-based faults (partitions/outages name
    /// *simulated* instants; a real wire has no such clock).  See
    /// DESIGN.md §8.
    ///
    /// **Beware with quota-based runs:** protocol messages lost to a drop
    /// filter are gone for good — token-based algorithms may then never
    /// finish their quota.  Intended for transport experiments and
    /// explicitly bounded runs.
    pub faults: Option<FaultPlan>,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            extra_latency: Time::ZERO,
            connect_timeout: Duration::from_secs(10),
            faults: None,
        }
    }
}

fn connect_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connecting to {addr} timed out: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Build node `me`'s full mesh: connect to every peer in `dir`, accept
/// every peer's inbound connection on `listener`, and spawn one reader
/// thread per inbound link.
///
/// The caller must have bound `listener` (on `dir.addr(me)` or, for
/// loopback harnesses, wherever the directory says) **before** any node
/// starts connecting — pre-bound listeners make the connect phase
/// deadlock-free: a `connect` completes against the listen backlog even
/// while the acceptor is still connecting out.
pub fn connect_mesh<M>(
    me: NodeId,
    listener: TcpListener,
    dir: &PeerDirectory,
    ctrl: PortCtrl,
    cfg: MeshConfig,
) -> io::Result<TcpPort<M>>
where
    M: WireCodec + Send + 'static,
{
    let n = dir.len();
    assert!(me < n, "node id {me} outside directory 0..{n}");

    // Outbound: one connection per peer, handshake first.
    let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    for (to, slot) in writers.iter_mut().enumerate() {
        if to == me {
            continue;
        }
        let mut s = connect_retry(dir.addr(to), cfg.connect_timeout)?;
        s.set_nodelay(true)?;
        write_handshake(&mut s, me)?;
        *slot = Some(s);
    }

    // Inbound: accept n-1 links; the handshake names the sender.
    let (tx, rx) = mpsc::channel::<Inbound<M>>();
    let extra = cfg.extra_latency.to_std();
    for _ in 0..n - 1 {
        let (mut stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        let from = read_handshake(&mut stream, n)?;
        let tx = tx.clone();
        let filter = cfg
            .faults
            .as_ref()
            .map(|plan| LinkFilter::new(plan, from, me, n));
        std::thread::Builder::new()
            .name(format!("mra-net-rx-{me}-from-{from}"))
            .spawn(move || reader_loop::<M>(stream, from, tx, extra, filter))
            .expect("spawn reader thread");
    }

    Ok(TcpPort {
        me,
        writers,
        rx,
        ctrl,
        buf: Vec::with_capacity(256),
    })
}

/// Drain one inbound link: decode frames, stamp delivery deadlines, feed
/// the node loop.  Exits on shutdown, EOF, decode failure or a dropped
/// receiver.  With a fault `filter` installed, each decoded protocol frame
/// first runs through the plan's deterministic per-link verdict: dropped
/// frames vanish here (the wire-level loss point), duplicate verdicts are
/// absorbed (TCP already delivers exactly once — see [`MeshConfig`]).
fn reader_loop<M: WireCodec>(
    mut stream: TcpStream,
    from: NodeId,
    tx: mpsc::Sender<Inbound<M>>,
    extra_latency: Duration,
    mut filter: Option<LinkFilter>,
) {
    let mut scratch = Vec::with_capacity(256);
    loop {
        let event = match read_frame(&mut stream, &mut scratch) {
            Ok(TAG_MSG) => match M::from_bytes(&scratch[1..]) {
                Ok(msg) => {
                    if let Some(f) = filter.as_mut() {
                        if f.next_fate() == FrameFate::Drop {
                            continue;
                        }
                    }
                    Inbound::Msg {
                        from,
                        deliver_at: Instant::now() + extra_latency,
                        msg,
                    }
                }
                Err(e) => {
                    eprintln!("mra-net: dropping link from node {from}: {e}");
                    Inbound::Shutdown
                }
            },
            Ok(TAG_DONE) => Inbound::Done,
            // TAG_SHUTDOWN, unknown tags and IO errors (EOF included) all
            // end the link; the node loop decides nothing more arrives.
            _ => Inbound::Shutdown,
        };
        let terminal = matches!(event, Inbound::Shutdown);
        if tx.send(event).is_err() || terminal {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_parse() {
        let d = PeerDirectory::parse("127.0.0.1:9000, 127.0.0.1:9001").unwrap();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.addr(1).port(), 9001);
        assert!(PeerDirectory::parse("not-an-addr").is_err());
        assert!(PeerDirectory::parse("").is_err());
    }

    #[test]
    fn two_node_mesh_moves_messages() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = PeerDirectory::new(vec![
            l0.local_addr().unwrap(),
            l1.local_addr().unwrap(),
        ]);
        let d0 = dir.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: TcpPort<u64> = connect_mesh(
                0,
                l0,
                &d0,
                PortCtrl::Cluster(r0),
                MeshConfig::default(),
            )
            .unwrap();
            p0.send(1, 0xDEAD_BEEF);
            match p0.recv() {
                PortEvent::Msg { from, msg, .. } => {
                    assert_eq!((from, msg), (1, 7));
                }
                _ => panic!("expected message"),
            }
        });
        let mut p1: TcpPort<u64> = connect_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            MeshConfig::default(),
        )
        .unwrap();
        p1.send(0, 7);
        match p1.recv() {
            PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (0, 0xDEAD_BEEF)),
            _ => panic!("expected message"),
        }
        t.join().unwrap();
    }

    #[test]
    fn drop_shim_loses_exactly_the_planned_frames() {
        let plan = FaultPlan::new(0xC0FFEE).drop_rate(0.3).dup_rate(0.1);
        const FRAMES: u64 = 200;
        // Replay the plan's verdicts for link 0 → 1: duplicates are
        // absorbed by TCP semantics, so everything but Drop arrives once.
        let mut filter = LinkFilter::new(&plan, 0, 1, 2);
        let expected = (0..FRAMES)
            .filter(|_| filter.next_fate() != FrameFate::Drop)
            .count() as u64;
        assert!(expected > 0 && expected < FRAMES, "degenerate plan");

        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = PeerDirectory::new(vec![
            l0.local_addr().unwrap(),
            l1.local_addr().unwrap(),
        ]);
        let d0 = dir.clone();
        let shim = MeshConfig {
            faults: Some(plan),
            ..MeshConfig::default()
        };
        let cfg0 = shim.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: TcpPort<u64> =
                connect_mesh(0, l0, &d0, PortCtrl::Cluster(r0), cfg0).unwrap();
            for k in 0..FRAMES {
                p0.send(1, k);
            }
            // Dropping p0 closes the stream; the peer's reader sees EOF.
        });
        let mut p1: TcpPort<u64> = connect_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            shim,
        )
        .unwrap();
        let mut got = Vec::new();
        loop {
            match p1.recv() {
                PortEvent::Msg { from, msg, .. } => {
                    assert_eq!(from, 0);
                    got.push(msg);
                }
                PortEvent::Shutdown => break,
                PortEvent::TimedOut => unreachable!("recv never times out"),
            }
        }
        t.join().unwrap();
        assert_eq!(got.len() as u64, expected, "shim lost the wrong frames");
        // FIFO survives the shim: payloads arrive in send order.
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn last_finisher_shutdown_reaches_peer() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = PeerDirectory::new(vec![
            l0.local_addr().unwrap(),
            l1.local_addr().unwrap(),
        ]);
        let d0 = dir.clone();
        let remaining = Arc::new(AtomicUsize::new(1));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: TcpPort<u64> = connect_mesh(
                0,
                l0,
                &d0,
                PortCtrl::Cluster(r0),
                MeshConfig::default(),
            )
            .unwrap();
            // Only active node finishes: broadcasts shutdown, exits.
            assert!(p0.quota_done());
        });
        let mut p1: TcpPort<u64> = connect_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            MeshConfig::default(),
        )
        .unwrap();
        assert!(matches!(p1.recv(), PortEvent::Shutdown));
        t.join().unwrap();
    }
}
