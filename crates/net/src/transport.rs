//! The threaded TCP mesh: per-peer framed connections implementing
//! [`mra_sim::NodePort`], one blocking reader thread per inbound link.
//! The readiness-polled alternative (and default) lives in
//! [`crate::reactor`]; this module remains the baseline transport for the
//! tracked benchmark, the shared vocabulary ([`PortCtrl`],
//! [`NetBackend`], [`MeshConfig`]) and platforms without epoll/kqueue.
//!
//! Topology: every ordered node pair `(i, j)` gets its own connection,
//! opened by `i` and used only for `i → j` traffic.  One TCP stream per
//! direction gives per-link FIFO for free and sidesteps write-contention
//! on shared sockets.  Each inbound connection is drained by a dedicated
//! reader thread that decodes frames and forwards them to the node loop
//! over an internal channel; writes happen inline on the node thread
//! (loopback and LAN socket buffers absorb them without blocking).
//!
//! Shutdown is coordinated at the transport level so the shared runtime
//! loop stays substrate-agnostic:
//!
//! * **in-process clusters** ([`PortCtrl::Cluster`]) count finishers in a
//!   shared atomic — the last one broadcasts [`TAG_SHUTDOWN`] frames;
//! * **multi-process deployments** ([`PortCtrl::Solo`]) send [`TAG_DONE`]
//!   frames to node 0, which broadcasts the shutdown once every active
//!   node (itself included) has finished.
//!
//! A reader that hits EOF or a decode error injects a shutdown event
//! rather than wedging the node: peers only close links when the run is
//! over (or broken), and either way the node must exit.

use crate::frame::{
    begin_frame, end_frame, read_frame, read_handshake, split_rack, split_rdata, write_frame,
    write_handshake, HEADER, TAG_DONE, TAG_MSG, TAG_RACK, TAG_RDATA, TAG_SHUTDOWN,
};
use mra_obs::NetCounters;
use mra_protocol::faults::{FaultPlan, FrameFate, LinkFilter};
use mra_protocol::reliable::{Reliability, RtoVerdict, RxSession, RxVerdict, TxSession};
use mra_protocol::WireCodec;
use mra_sim::{NodePort, PortEvent};
use mra_types::{NodeId, Time};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The cluster map: `NodeId → SocketAddr` for every node.
#[derive(Clone, Debug)]
pub struct PeerDirectory {
    addrs: Vec<SocketAddr>,
}

impl PeerDirectory {
    /// Directory over explicit addresses (index = node id).
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        assert!(!addrs.is_empty(), "empty peer directory");
        PeerDirectory { addrs }
    }

    /// Parse a comma-separated `host:port,host:port,…` list (the
    /// `mra-node --peers` format).  Blank entries — trailing commas,
    /// doubled commas, stray whitespace — are tolerated and skipped;
    /// a malformed entry is reported with its position in the list.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut addrs = Vec::new();
        for (idx, entry) in spec.split(',').enumerate() {
            let entry = entry.trim();
            if entry.is_empty() {
                continue; // tolerate `a,b,` and `a,,b`
            }
            let addr = entry.parse::<SocketAddr>().map_err(|e| {
                format!("peer entry #{idx} ({entry:?}): {e}")
            })?;
            addrs.push(addr);
        }
        if addrs.is_empty() {
            return Err("empty peer list".into());
        }
        Ok(PeerDirectory::new(addrs))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True if the directory is empty (never: construction forbids it;
    /// present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Address of node `id`.
    pub fn addr(&self, id: NodeId) -> SocketAddr {
        self.addrs[id]
    }
}

/// Which TCP transport drives the mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetBackend {
    /// One reactor thread per node polls every peer socket for readiness
    /// (`crate::reactor`): one bidirectional connection per unordered
    /// pair, coalesced writes, RTOs on the reactor's timer wheel.  The
    /// default on unix.
    Reactor,
    /// One blocking reader thread per inbound link, writes inline on the
    /// node thread (this module).  The pre-reactor transport, kept as the
    /// baseline for the tracked benchmark and as the only backend on
    /// platforms without epoll/kqueue.
    Threaded,
}

impl NetBackend {
    /// Resolve the backend from the environment: `MRA_NET_REACTOR`
    /// (truthy/falsy) wins when set; otherwise a truthy `MRA_NET_THREADS`
    /// selects [`NetBackend::Threaded`]; otherwise the reactor.  Non-unix
    /// platforms always get the threaded backend.
    pub fn from_env() -> NetBackend {
        fn truthy(v: &str) -> bool {
            matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on")
        }
        if !cfg!(unix) {
            return NetBackend::Threaded;
        }
        if let Ok(v) = std::env::var("MRA_NET_REACTOR") {
            return if truthy(&v) { NetBackend::Reactor } else { NetBackend::Threaded };
        }
        if std::env::var("MRA_NET_THREADS").as_deref().map(truthy).unwrap_or(false) {
            return NetBackend::Threaded;
        }
        NetBackend::Reactor
    }
}

/// How a TCP port coordinates cluster-wide shutdown.
pub enum PortCtrl {
    /// In-process loopback cluster: finishers decrement the shared count;
    /// the last one broadcasts shutdown frames.
    Cluster(Arc<AtomicUsize>),
    /// One process per node: finishers report [`TAG_DONE`] to node 0,
    /// which broadcasts shutdown once all `active` nodes are done.
    Solo {
        /// Number of request-issuing nodes (`0..active`; node 0 included).
        active: usize,
        /// Done reports seen so far (node 0 only; includes itself).
        done_seen: usize,
        /// Has this node finished its own quota?
        self_done: bool,
    },
}

/// What a node that just finished its quota must do next, as decided by
/// [`PortCtrl::self_done`].  Shared by both transports so the shutdown
/// protocol cannot drift between them.
pub(crate) enum DoneAct {
    /// Every active node is done: broadcast [`TAG_SHUTDOWN`] and stop.
    LastFinisher,
    /// Report [`TAG_DONE`] to node 0 and keep serving the protocol.
    ReportDone,
    /// Keep serving until shutdown arrives.
    Wait,
}

impl PortCtrl {
    /// Node `me` finished its own round quota.
    pub(crate) fn self_done(&mut self, me: NodeId) -> DoneAct {
        match self {
            PortCtrl::Cluster(remaining) => {
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    DoneAct::LastFinisher
                } else {
                    DoneAct::Wait
                }
            }
            PortCtrl::Solo { active, done_seen, self_done } => {
                *self_done = true;
                if me == 0 {
                    *done_seen += 1;
                    if *done_seen >= *active {
                        DoneAct::LastFinisher
                    } else {
                        DoneAct::Wait
                    }
                } else {
                    DoneAct::ReportDone
                }
            }
        }
    }

    /// A [`TAG_DONE`] frame arrived (meaningful on solo node 0 only).
    /// True when every active node — this one included — has finished:
    /// time to broadcast shutdown and stop.
    pub(crate) fn peer_done(&mut self) -> bool {
        match self {
            PortCtrl::Solo { active, done_seen, self_done } => {
                *done_seen += 1;
                *self_done && *done_seen >= *active
            }
            // Done frames only flow in solo deployments.
            PortCtrl::Cluster(_) => false,
        }
    }
}

/// Transport-level event forwarded by reader threads to the node loop.
enum Inbound<M> {
    Msg {
        from: NodeId,
        deliver_at: Instant,
        msg: M,
    },
    /// Reliable-session data frame (reliability on): the node loop runs
    /// the receive window and acks.
    Data {
        from: NodeId,
        deliver_at: Instant,
        seq: u64,
        ack: u64,
        msg: M,
    },
    /// Reliable-session standalone cumulative ack.
    Ack { from: NodeId, ack: u64 },
    Done,
    Shutdown,
}

/// Inbound frame tallies, bumped by the reader threads and folded into the
/// port's [`NetCounters`] snapshot by [`TcpPort::counters`].  Relaxed
/// ordering suffices: the values are statistics, read after the run.
#[derive(Debug, Default)]
struct RxCounters {
    frames_in: AtomicU64,
    bytes_in: AtomicU64,
    /// `read(2)`-equivalents: each `read_frame` costs two `read_exact`
    /// servicings (length word, then body).  An approximation — a short
    /// read inside `read_exact` re-reads — but loopback/LAN frames fit a
    /// segment, so in practice it *is* the syscall count.
    read_calls: AtomicU64,
}

/// Per-port session state (reliability on): one [`TxSession`]/[`RxSession`]
/// pair per peer plus the per-peer retransmit deadline.  Wall-clock
/// instants are mapped onto the session layer's [`mra_types::Time`] axis
/// through the port's `epoch`.
struct TcpSessions<M> {
    cfg: Reliability,
    epoch: Instant,
    tx: Vec<TxSession<M>>,
    rx: Vec<RxSession>,
    deadline: Vec<Option<Instant>>,
}

impl<M: Clone> TcpSessions<M> {
    fn new(cfg: Reliability, n: usize) -> Self {
        TcpSessions {
            epoch: Instant::now(),
            tx: (0..n).map(|_| TxSession::new(cfg.window)).collect(),
            rx: vec![RxSession::default(); n],
            deadline: vec![None; n],
            cfg,
        }
    }

    /// Now on the session time axis.
    fn now(&self) -> Time {
        Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// The earliest armed retransmit deadline across peers.
    fn next_deadline(&self) -> Option<Instant> {
        self.deadline.iter().flatten().min().copied()
    }
}

/// A node's TCP connection bundle: implements [`NodePort`] over real
/// sockets.  Build one with [`connect_mesh`].
pub struct TcpPort<M> {
    me: NodeId,
    /// Outbound stream per peer (`None` at `me`).
    writers: Vec<Option<TcpStream>>,
    rx: mpsc::Receiver<Inbound<M>>,
    ctrl: PortCtrl,
    /// Reusable encode buffer (header + payload, written in one call).
    buf: Vec<u8>,
    /// Reliable-session state, when [`MeshConfig::reliability`] is set.
    sess: Option<TcpSessions<M>>,
    /// Outbound-side transport tallies (frames/bytes by direction, frame
    /// kind, retransmissions, RTO fires).  Inbound lives in `rx_counters`.
    counters: NetCounters,
    /// Inbound tallies shared with the reader threads.
    rx_counters: Arc<RxCounters>,
    /// Dump [`TcpPort::counters`] to stderr when the port drops
    /// ([`MeshConfig::metrics`], `--metrics` / `MRA_METRICS=1`).
    metrics: bool,
    /// Publish the final counters here on drop ([`MeshConfig::counters_slot`]).
    slot: Option<Arc<Mutex<NetCounters>>>,
}

impl<M> TcpPort<M> {
    /// Snapshot of this port's transport counters, with the reader
    /// threads' inbound tallies folded in.  Byte counts are on-wire frame
    /// sizes (header included).
    pub fn counters(&self) -> NetCounters {
        let mut c = self.counters.clone();
        c.frames_in = self.rx_counters.frames_in.load(Ordering::Relaxed);
        c.bytes_in = self.rx_counters.bytes_in.load(Ordering::Relaxed);
        c.read_calls = self.rx_counters.read_calls.load(Ordering::Relaxed);
        c
    }
}

impl<M> Drop for TcpPort<M> {
    fn drop(&mut self) {
        if let Some(slot) = &self.slot {
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = self.counters();
        }
        if self.metrics {
            eprintln!("{}", self.counters().render(self.me));
        }
    }
}

impl<M: Clone> TcpPort<M> {
    fn broadcast_shutdown(&mut self) {
        for w in self.writers.iter_mut().flatten() {
            let _ = write_frame(w, TAG_SHUTDOWN, &[]);
            self.counters.frames_out += 1;
            self.counters.bytes_out += HEADER as u64;
            self.counters.write_calls += 1;
            self.counters.by_kind.bump("Shutdown", 1);
        }
    }

    /// Write a standalone cumulative ack to `peer`.
    fn write_rack(&mut self, peer: NodeId, ack: u64) {
        if let Some(w) = self.writers[peer].as_mut() {
            let _ = write_frame(w, TAG_RACK, &ack.to_le_bytes());
            self.counters.ack_frames += 1;
            self.counters.bytes_out += (HEADER + 8) as u64;
            self.counters.write_calls += 1;
            self.counters.by_kind.bump("RAck", 1);
        }
    }

    /// Translate a transport event; `None` means "keep receiving" (a
    /// control frame that did not end the run).
    fn translate(&mut self, inb: Inbound<M>) -> Option<PortEvent<M>> {
        match inb {
            // The TCP wire format predates tracing and does not carry
            // Lamport stamps: delivered events carry stamp 0 (the tracer
            // then has per-node ordering and counters, no cross-node
            // edges).  See DESIGN.md §11.
            Inbound::Msg { from, deliver_at, msg } => {
                Some(PortEvent::Msg { from, deliver_at, stamp: 0, msg })
            }
            Inbound::Data { from, deliver_at, seq, ack, msg } => {
                let s = self.sess.as_mut().expect("rdata without reliability");
                // Piggybacked ack first, then the receive window.
                s.tx[from].ack(ack);
                if !s.tx[from].has_unacked() {
                    s.deadline[from] = None;
                }
                let verdict = s.rx[from].accept(seq);
                let cum = s.rx[from].cum();
                // Ack every data frame immediately — duplicates included,
                // so a lost ack cannot wedge the sender.  (The next data
                // frame we send additionally piggybacks the same value.)
                self.write_rack(from, cum);
                match verdict {
                    RxVerdict::Deliver => {
                        Some(PortEvent::Msg { from, deliver_at, stamp: 0, msg })
                    }
                    RxVerdict::Stale | RxVerdict::Gap => None,
                }
            }
            Inbound::Ack { from, ack } => {
                let s = self.sess.as_mut().expect("rack without reliability");
                s.tx[from].ack(ack);
                if !s.tx[from].has_unacked() {
                    s.deadline[from] = None;
                }
                None
            }
            Inbound::Shutdown => Some(PortEvent::Shutdown),
            Inbound::Done => {
                if self.ctrl.peer_done() {
                    self.broadcast_shutdown();
                    return Some(PortEvent::Shutdown);
                }
                None
            }
        }
    }

    /// Fire every due retransmit timer: re-send the unacked window of each
    /// due peer (go-back-N with the current cumulative ack piggybacked) and
    /// re-arm with the backed-off delay.
    fn fire_rtos(&mut self)
    where
        M: WireCodec,
    {
        let Some(s) = self.sess.as_mut() else {
            return;
        };
        let wall = Instant::now();
        let now = s.now();
        let TcpSessions { cfg, epoch, tx, rx, deadline } = s;
        for (peer, dl) in deadline.iter_mut().enumerate() {
            if !dl.is_some_and(|d| d <= wall) {
                continue;
            }
            match tx[peer].on_rto(now, cfg) {
                RtoVerdict::Idle => *dl = None,
                RtoVerdict::Rearm(at) => *dl = Some(*epoch + at.to_std()),
                RtoVerdict::Retransmit(_) => {
                    self.counters.rto_fires += 1;
                    let ack = rx[peer].cum();
                    if let Some(w) = self.writers[peer].as_mut() {
                        for (seq, msg) in tx[peer].unacked() {
                            begin_frame(&mut self.buf);
                            self.buf.extend_from_slice(&seq.to_le_bytes());
                            self.buf.extend_from_slice(&ack.to_le_bytes());
                            msg.encode(&mut self.buf);
                            end_frame(&mut self.buf, TAG_RDATA);
                            let _ = io::Write::write_all(w, &self.buf);
                            self.counters.retransmit_frames += 1;
                            self.counters.bytes_out += self.buf.len() as u64;
                            self.counters.write_calls += 1;
                            self.counters.by_kind.bump("RData", 1);
                        }
                    }
                    *dl = Some(wall + tx[peer].rto_delay(cfg).to_std());
                }
            }
        }
    }

    /// One blocking wait step shared by `recv` and `recv_deadline`:
    /// honours the earlier of the caller's deadline and the next retransmit
    /// deadline, firing due RTOs internally.
    fn wait(&mut self, caller: Option<Instant>) -> PortEvent<M>
    where
        M: WireCodec,
    {
        loop {
            let rto = self.sess.as_ref().and_then(TcpSessions::next_deadline);
            let bound = match (caller, rto) {
                (Some(c), Some(r)) => Some(c.min(r)),
                (Some(c), None) => Some(c),
                (None, r) => r,
            };
            let received = match bound {
                None => self.rx.recv().map_err(|_| ()),
                Some(d) => match self
                    .rx
                    .recv_timeout(d.saturating_duration_since(Instant::now()))
                {
                    Ok(inb) => Ok(inb),
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if caller.is_some_and(|c| Instant::now() >= c) {
                            return PortEvent::TimedOut;
                        }
                        self.fire_rtos();
                        continue;
                    }
                },
            };
            match received {
                Err(()) => return PortEvent::Shutdown,
                Ok(inb) => {
                    if let Some(ev) = self.translate(inb) {
                        return ev;
                    }
                }
            }
        }
    }
}

impl<M: WireCodec + Clone + Send> NodePort<M> for TcpPort<M> {
    // `_stamp` is minted by the runtime's tracer but the wire format does
    // not carry it — receivers deliver stamp 0 (see `translate`).
    fn send(&mut self, to: NodeId, msg: M, _stamp: u64) {
        begin_frame(&mut self.buf);
        let (tag, label) = match self.sess.as_mut() {
            None => {
                msg.encode(&mut self.buf);
                (TAG_MSG, "Msg")
            }
            Some(s) => {
                // Session mode: sequence the frame, retain the retransmit
                // copy, piggyback the cumulative ack for this peer, and
                // make sure a retransmit deadline is ticking.
                let now = s.now();
                let seq = s.tx[to].send(&msg, now);
                let ack = s.rx[to].cum();
                self.buf.extend_from_slice(&seq.to_le_bytes());
                self.buf.extend_from_slice(&ack.to_le_bytes());
                msg.encode(&mut self.buf);
                if s.deadline[to].is_none() {
                    s.deadline[to] = Some(Instant::now() + s.tx[to].rto_delay(&s.cfg).to_std());
                }
                (TAG_RDATA, "RData")
            }
        };
        end_frame(&mut self.buf, tag);
        if let Some(w) = self.writers[to].as_mut() {
            // Failures mean the peer is past shutdown; the run is over.
            let _ = io::Write::write_all(w, &self.buf);
            self.counters.frames_out += 1;
            self.counters.bytes_out += self.buf.len() as u64;
            self.counters.write_calls += 1;
            self.counters.by_kind.bump(label, 1);
        }
    }

    fn recv(&mut self) -> PortEvent<M> {
        self.wait(None)
    }

    fn recv_deadline(&mut self, deadline: Instant) -> PortEvent<M> {
        self.wait(Some(deadline))
    }

    fn quota_done(&mut self) -> bool {
        match self.ctrl.self_done(self.me) {
            DoneAct::LastFinisher => {
                self.broadcast_shutdown();
                true
            }
            DoneAct::ReportDone => {
                if let Some(w) = self.writers[0].as_mut() {
                    let _ = write_frame(w, TAG_DONE, &[]);
                    self.counters.frames_out += 1;
                    self.counters.bytes_out += HEADER as u64;
                    self.counters.write_calls += 1;
                    self.counters.by_kind.bump("Done", 1);
                }
                false
            }
            DoneAct::Wait => false,
        }
    }
}

/// Mesh construction parameters.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// Artificial latency added on top of the real wire (delivery of each
    /// message is deferred by this much at the receiver).  `Time::ZERO`
    /// measures the raw transport.  Together with `faults` this forms the
    /// frame-level drop/delay shim.
    pub extra_latency: Time,
    /// How long to keep retrying outbound connections (peers of a
    /// multi-process cluster may start later than this node).
    pub connect_timeout: Duration,
    /// Frame-level fault shim: each inbound link runs the plan's
    /// deterministic per-link drop filter (`k`-th frame on a link sees the
    /// same verdict as on the simulated substrates).  What TCP cannot
    /// reproduce: duplicate frames (the kernel's sequence numbers already
    /// absorb them, so dup verdicts are ignored here — unlike the
    /// simulated substrates nothing aggregates per-reader counters into
    /// `RunResult::faults`) and time-based faults (partitions/outages name
    /// *simulated* instants; a real wire has no such clock).  See
    /// DESIGN.md §8.
    ///
    /// **Beware with quota-based runs and reliability off:** protocol
    /// messages lost to a drop filter are gone for good — token-based
    /// algorithms may then never finish their quota.  Enable
    /// [`MeshConfig::reliability`] to recover the drops, or keep lossy
    /// plans for explicitly bounded transport experiments.
    pub faults: Option<FaultPlan>,
    /// Reliable-delivery session layer (`mra_protocol::reliable`): when
    /// set, every protocol message travels as a sequenced
    /// [`TAG_RDATA`] frame with a piggybacked cumulative ack, receivers
    /// ack (standalone [`TAG_RACK`] frames) and dedup, and the node loop
    /// retransmits unacked frames on a capped-backoff timer — so
    /// [`MeshConfig::faults`] drops are *recovered* instead of absorbed
    /// into lost liveness.  `MRA_RELIABLE` / `MRA_RTO_MS` feed this in the
    /// `mra-node` binary.
    pub reliability: Option<Reliability>,
    /// Dump the port's [`NetCounters`] (frames/bytes per direction and
    /// kind, retransmissions, RTO fires) to stderr when the port drops.
    /// Fed by `mra-node --metrics` / `MRA_METRICS=1`.
    pub metrics: bool,
    /// Where the transport publishes its final [`NetCounters`]: loopback
    /// harnesses hand each node a slot and merge them into the run's
    /// observability report after the port drops.  The reactor backend
    /// additionally refreshes the slot every iteration, so it can be read
    /// live.  `None` keeps the counters port-local.
    pub counters_slot: Option<Arc<Mutex<NetCounters>>>,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            extra_latency: Time::ZERO,
            connect_timeout: Duration::from_secs(10),
            faults: None,
            reliability: None,
            metrics: false,
            counters_slot: None,
        }
    }
}

fn connect_retry(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connecting to {addr} timed out: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Build node `me`'s full mesh: connect to every peer in `dir`, accept
/// every peer's inbound connection on `listener`, and spawn one reader
/// thread per inbound link.
///
/// The caller must have bound `listener` (on `dir.addr(me)` or, for
/// loopback harnesses, wherever the directory says) **before** any node
/// starts connecting — pre-bound listeners make the connect phase
/// deadlock-free: a `connect` completes against the listen backlog even
/// while the acceptor is still connecting out.
pub fn connect_mesh<M>(
    me: NodeId,
    listener: TcpListener,
    dir: &PeerDirectory,
    ctrl: PortCtrl,
    cfg: MeshConfig,
) -> io::Result<TcpPort<M>>
where
    M: WireCodec + Clone + Send + 'static,
{
    let n = dir.len();
    assert!(me < n, "node id {me} outside directory 0..{n}");

    // Outbound: one connection per peer, handshake first.
    let mut writers: Vec<Option<TcpStream>> = (0..n).map(|_| None).collect();
    for (to, slot) in writers.iter_mut().enumerate() {
        if to == me {
            continue;
        }
        let mut s = connect_retry(dir.addr(to), cfg.connect_timeout)?;
        s.set_nodelay(true)?;
        write_handshake(&mut s, me)?;
        *slot = Some(s);
    }

    // Inbound: accept n-1 links; the handshake names the sender.
    let (tx, rx) = mpsc::channel::<Inbound<M>>();
    let extra = cfg.extra_latency.to_std();
    let reliable = cfg.reliability.is_some();
    let rx_counters = Arc::new(RxCounters::default());
    for _ in 0..n - 1 {
        let (mut stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        let from = read_handshake(&mut stream, n)?;
        let tx = tx.clone();
        let filter = cfg
            .faults
            .as_ref()
            .map(|plan| LinkFilter::new(plan, from, me, n));
        let tallies = Arc::clone(&rx_counters);
        std::thread::Builder::new()
            .name(format!("mra-net-rx-{me}-from-{from}"))
            .spawn(move || reader_loop::<M>(stream, from, tx, extra, filter, reliable, tallies))
            .expect("spawn reader thread");
    }

    Ok(TcpPort {
        me,
        writers,
        rx,
        ctrl,
        buf: Vec::with_capacity(256),
        sess: cfg.reliability.map(|r| TcpSessions::new(r, n)),
        counters: NetCounters::default(),
        rx_counters,
        metrics: cfg.metrics,
        slot: cfg.counters_slot,
    })
}

/// Drain one inbound link: decode frames, stamp delivery deadlines, feed
/// the node loop.  Exits on shutdown, EOF, decode failure or a dropped
/// receiver.  With a fault `filter` installed, each decoded protocol frame
/// first runs through the plan's deterministic per-link verdict: dropped
/// frames vanish here (the wire-level loss point), duplicate verdicts are
/// absorbed (TCP already delivers exactly once — see [`MeshConfig`]).
fn reader_loop<M: WireCodec + Clone>(
    mut stream: TcpStream,
    from: NodeId,
    tx: mpsc::Sender<Inbound<M>>,
    extra_latency: Duration,
    mut filter: Option<LinkFilter>,
    reliable: bool,
    tallies: Arc<RxCounters>,
) {
    let mut scratch = Vec::with_capacity(256);
    loop {
        // One filter verdict per frame (data *and* ack frames: an ack can
        // be lost or duplicated on a real wire just like data).
        let mut fate = FrameFate::Deliver;
        let got = read_frame(&mut stream, &mut scratch);
        if got.is_ok() {
            // Every decodable frame counts, *before* the fault filter —
            // these tallies describe the wire, not the delivery outcome.
            // On-wire size = 4-byte length prefix + body (tag + payload).
            tallies.frames_in.fetch_add(1, Ordering::Relaxed);
            tallies.bytes_in.fetch_add(scratch.len() as u64 + 4, Ordering::Relaxed);
            tallies.read_calls.fetch_add(2, Ordering::Relaxed);
        }
        let event = match got {
            Ok(TAG_MSG) if !reliable => match M::from_bytes(&scratch[1..]) {
                Ok(msg) => {
                    if let Some(f) = filter.as_mut() {
                        if f.next_fate() == FrameFate::Drop {
                            continue;
                        }
                    }
                    Inbound::Msg {
                        from,
                        deliver_at: Instant::now() + extra_latency,
                        msg,
                    }
                }
                Err(e) => {
                    eprintln!("mra-net: dropping link from node {from}: {e}");
                    Inbound::Shutdown
                }
            },
            Ok(TAG_RDATA) if reliable => {
                if let Some(f) = filter.as_mut() {
                    fate = f.next_fate();
                    if fate == FrameFate::Drop {
                        continue;
                    }
                }
                match split_rdata(&scratch[1..])
                    .and_then(|(seq, ack, body)| {
                        M::from_bytes(body)
                            .map(|msg| (seq, ack, msg))
                            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
                    }) {
                    Ok((seq, ack, msg)) => Inbound::Data {
                        from,
                        deliver_at: Instant::now() + extra_latency,
                        seq,
                        ack,
                        msg,
                    },
                    Err(e) => {
                        eprintln!("mra-net: dropping link from node {from}: {e}");
                        Inbound::Shutdown
                    }
                }
            }
            Ok(TAG_RACK) if reliable => {
                if let Some(f) = filter.as_mut() {
                    fate = f.next_fate();
                    if fate == FrameFate::Drop {
                        continue;
                    }
                }
                match split_rack(&scratch[1..]) {
                    Ok(ack) => Inbound::Ack { from, ack },
                    Err(e) => {
                        eprintln!("mra-net: dropping link from node {from}: {e}");
                        Inbound::Shutdown
                    }
                }
            }
            Ok(TAG_DONE) => Inbound::Done,
            // TAG_SHUTDOWN, mode-mismatched and unknown tags, and IO errors
            // (EOF included) all end the link; the node loop decides
            // nothing more arrives.
            _ => Inbound::Shutdown,
        };
        let terminal = matches!(event, Inbound::Shutdown);
        // A duplicate verdict puts a second copy behind the original —
        // only meaningful in session mode, where Data dedup and Ack
        // idempotence absorb it (session frames are the only ones
        // filtered, so the clone is cheap and rare).
        let dup = !terminal && fate == FrameFate::Duplicate;
        if dup {
            let copy = match &event {
                Inbound::Data { from, deliver_at, seq, ack, msg } => Some(Inbound::Data {
                    from: *from,
                    deliver_at: *deliver_at,
                    seq: *seq,
                    ack: *ack,
                    msg: msg.clone(),
                }),
                Inbound::Ack { from, ack } => Some(Inbound::Ack { from: *from, ack: *ack }),
                _ => None,
            };
            if tx.send(event).is_err() {
                return;
            }
            if let Some(copy) = copy {
                if tx.send(copy).is_err() {
                    return;
                }
            }
            continue;
        }
        if tx.send(event).is_err() || terminal {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_parse() {
        let d = PeerDirectory::parse("127.0.0.1:9000, 127.0.0.1:9001").unwrap();
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.addr(1).port(), 9001);
        assert!(PeerDirectory::parse("not-an-addr").is_err());
        assert!(PeerDirectory::parse("").is_err());
    }

    #[test]
    fn directory_parse_tolerates_trailing_commas_and_blank_entries() {
        // Trailing comma (the classic shell-generated list), doubled
        // commas and stray whitespace all parse to the same directory.
        for spec in [
            "127.0.0.1:9000,127.0.0.1:9001,",
            "127.0.0.1:9000,,127.0.0.1:9001",
            " 127.0.0.1:9000 , 127.0.0.1:9001 , ",
        ] {
            let d = PeerDirectory::parse(spec).unwrap_or_else(|e| panic!("{spec:?}: {e}"));
            assert_eq!(d.len(), 2, "{spec:?}");
            assert_eq!(d.addr(0).port(), 9000);
            assert_eq!(d.addr(1).port(), 9001);
        }
        // A list of only separators is still empty.
        assert_eq!(
            PeerDirectory::parse(", ,").unwrap_err(),
            "empty peer list"
        );
    }

    #[test]
    fn directory_parse_reports_the_offending_entry_with_its_index() {
        let err = PeerDirectory::parse("127.0.0.1:9000,bogus:addr,127.0.0.1:9001")
            .expect_err("malformed entry must fail");
        assert!(err.contains("#1"), "missing index: {err}");
        assert!(err.contains("bogus:addr"), "missing entry text: {err}");
        let err = PeerDirectory::parse("nope").expect_err("must fail");
        assert!(err.contains("#0"), "{err}");
    }

    #[test]
    fn two_node_mesh_moves_messages() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = PeerDirectory::new(vec![
            l0.local_addr().unwrap(),
            l1.local_addr().unwrap(),
        ]);
        let d0 = dir.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: TcpPort<u64> = connect_mesh(
                0,
                l0,
                &d0,
                PortCtrl::Cluster(r0),
                MeshConfig::default(),
            )
            .unwrap();
            p0.send(1, 0xDEAD_BEEF, 0);
            match p0.recv() {
                PortEvent::Msg { from, msg, .. } => {
                    assert_eq!((from, msg), (1, 7));
                }
                _ => panic!("expected message"),
            }
        });
        let mut p1: TcpPort<u64> = connect_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            MeshConfig::default(),
        )
        .unwrap();
        p1.send(0, 7, 0);
        match p1.recv() {
            PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (0, 0xDEAD_BEEF)),
            _ => panic!("expected message"),
        }
        t.join().unwrap();
    }

    #[test]
    fn drop_shim_loses_exactly_the_planned_frames() {
        let plan = FaultPlan::new(0xC0FFEE).drop_rate(0.3).dup_rate(0.1);
        const FRAMES: u64 = 200;
        // Replay the plan's verdicts for link 0 → 1: duplicates are
        // absorbed by TCP semantics, so everything but Drop arrives once.
        let mut filter = LinkFilter::new(&plan, 0, 1, 2);
        let expected = (0..FRAMES)
            .filter(|_| filter.next_fate() != FrameFate::Drop)
            .count() as u64;
        assert!(expected > 0 && expected < FRAMES, "degenerate plan");

        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = PeerDirectory::new(vec![
            l0.local_addr().unwrap(),
            l1.local_addr().unwrap(),
        ]);
        let d0 = dir.clone();
        let shim = MeshConfig {
            faults: Some(plan),
            ..MeshConfig::default()
        };
        let cfg0 = shim.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: TcpPort<u64> =
                connect_mesh(0, l0, &d0, PortCtrl::Cluster(r0), cfg0).unwrap();
            for k in 0..FRAMES {
                p0.send(1, k, 0);
            }
            // Dropping p0 closes the stream; the peer's reader sees EOF.
        });
        let mut p1: TcpPort<u64> = connect_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            shim,
        )
        .unwrap();
        let mut got = Vec::new();
        loop {
            match p1.recv() {
                PortEvent::Msg { from, msg, .. } => {
                    assert_eq!(from, 0);
                    got.push(msg);
                }
                PortEvent::Shutdown => break,
                PortEvent::TimedOut => unreachable!("recv never times out"),
            }
        }
        t.join().unwrap();
        assert_eq!(got.len() as u64, expected, "shim lost the wrong frames");
        // FIFO survives the shim: payloads arrive in send order.
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reliable_link_recovers_every_planned_drop_in_order() {
        // The counterpart of `drop_shim_loses_exactly_the_planned_frames`:
        // with the session layer on, the same 30%-drop plan loses nothing —
        // every frame arrives exactly once, in order, via retransmission.
        const FRAMES: u64 = 200;
        let plan = FaultPlan::new(0xC0FFEE).drop_rate(0.3).dup_rate(0.1);
        let shim = MeshConfig {
            faults: Some(plan),
            reliability: Some(Reliability::with_rto(mra_types::Time::from_millis(5))),
            ..MeshConfig::default()
        };
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = PeerDirectory::new(vec![
            l0.local_addr().unwrap(),
            l1.local_addr().unwrap(),
        ]);
        let d0 = dir.clone();
        let cfg0 = shim.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: TcpPort<u64> =
                connect_mesh(0, l0, &d0, PortCtrl::Cluster(r0), cfg0).unwrap();
            for k in 0..FRAMES {
                p0.send(1, k, 0);
            }
            // Keep pumping: retransmit timers fire inside the recv loop
            // until the peer confirms full receipt with one reliable
            // message of its own.
            let deadline = Instant::now() + Duration::from_secs(20);
            match p0.recv_deadline(deadline) {
                PortEvent::Msg { from, msg, .. } => {
                    assert_eq!((from, msg), (1, u64::MAX));
                }
                PortEvent::Shutdown => panic!("peer vanished early"),
                PortEvent::TimedOut => panic!("confirmation never arrived"),
            }
        });
        let mut p1: TcpPort<u64> = connect_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            shim,
        )
        .unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while (got.len() as u64) < FRAMES {
            match p1.recv_deadline(deadline) {
                PortEvent::Msg { from, msg, .. } => {
                    assert_eq!(from, 0);
                    got.push(msg);
                }
                PortEvent::Shutdown => panic!("sender vanished early"),
                PortEvent::TimedOut => panic!(
                    "reliable link stalled with {}/{FRAMES} frames",
                    got.len()
                ),
            }
        }
        // Exactly once, in order — the session contract.
        assert_eq!(got, (0..FRAMES).collect::<Vec<u64>>());
        p1.send(0, u64::MAX, 0);
        // Serve the confirmation's retransmissions until the peer is done.
        let handoff = Instant::now() + Duration::from_secs(5);
        while Instant::now() < handoff && !t.is_finished() {
            let _ = p1.recv_deadline(Instant::now() + Duration::from_millis(20));
        }
        t.join().unwrap();
    }

    #[test]
    fn last_finisher_shutdown_reaches_peer() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = PeerDirectory::new(vec![
            l0.local_addr().unwrap(),
            l1.local_addr().unwrap(),
        ]);
        let d0 = dir.clone();
        let remaining = Arc::new(AtomicUsize::new(1));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: TcpPort<u64> = connect_mesh(
                0,
                l0,
                &d0,
                PortCtrl::Cluster(r0),
                MeshConfig::default(),
            )
            .unwrap();
            // Only active node finishes: broadcasts shutdown, exits.
            assert!(p0.quota_done());
        });
        let mut p1: TcpPort<u64> = connect_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            MeshConfig::default(),
        )
        .unwrap();
        assert!(matches!(p1.recv(), PortEvent::Shutdown));
        t.join().unwrap();
    }
}
