//! The readiness-polled TCP transport: one reactor thread per node
//! drives *every* peer socket through an epoll/kqueue poller.
//!
//! The threaded transport ([`crate::transport`]) spends one OS thread and
//! one ordered-pair connection per link — `n-1` reader threads and
//! `2(n-1)` sockets per node, one `write(2)` per frame.  Fine at 8
//! nodes; at 256 that is 65 k threads and 130 k sockets cluster-wide,
//! and every hot-path frame costs a syscall.  This module replaces all
//! of it with, per node:
//!
//! * **one thread** — the reactor — owning one [`polling::Poller`] and
//!   every socket;
//! * **one bidirectional connection per unordered pair** — the smaller
//!   node id connects to the larger id's listener (the 4-byte handshake
//!   names the connector).  TCP is FIFO in both directions and the
//!   reactor serializes writes, so the per-directed-link FIFO contract
//!   the protocols assume still holds while the socket count halves;
//! * **incremental decode** — per-connection
//!   [`FrameBuf`](crate::frame::FrameBuf)s absorb reads wherever the
//!   kernel cuts them;
//! * **coalesced writes** — frames queue into a per-connection byte
//!   buffer and flush once per reactor iteration: protocol messages,
//!   retransmissions, control frames and piggybacked/standalone session
//!   acks to the same peer share a single `write(2)`.  A partial write
//!   parks the remainder and resumes on write-readiness;
//! * **reactor-owned timers** — reliability RTO deadlines and connect
//!   retries bound the poll timeout; retransmission is serviced by the
//!   reactor, not (as on the threaded port) by whoever happens to be
//!   sitting in `recv`.
//!
//! The node loop talks to the reactor through two mpsc channels plus a
//! socketpair-based wakeup: senders enqueue a command and write one byte
//! iff the `woken` flag was clear; the reactor drains the pipe, *then*
//! clears the flag, *then* drains the queue — the order that makes a
//! lost wakeup impossible.  See DESIGN.md §12 for the full contract.
//!
//! Everything here is unix-only (the vendored poller has no backend
//! elsewhere); [`NetBackend::from_env`](crate::NetBackend::from_env)
//! never selects the reactor on other platforms, and the stub
//! `connect_reactor_mesh` below reports `Unsupported` if forced.

#[cfg(unix)]
pub use imp::{connect_reactor_mesh, ReactorPort};

#[cfg(unix)]
mod imp {
    use crate::frame::{
        begin_frame, end_frame, split_rack, split_rdata, FrameBuf, WriteBuf, TAG_DONE, TAG_MSG,
        TAG_RACK, TAG_RDATA, TAG_SHUTDOWN,
    };
    use crate::sys;
    use crate::transport::{DoneAct, MeshConfig, PeerDirectory, PortCtrl};
    use mra_obs::NetCounters;
    use mra_protocol::faults::{FrameFate, LinkFilter};
    use mra_protocol::reliable::{Reliability, RtoVerdict, RxBatch, RxVerdict, TxSession};
    use mra_protocol::WireCodec;
    use mra_sim::{NodePort, PortEvent};
    use mra_types::{NodeId, Time};
    use polling::{Event, Events, Poller};
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::{Duration, Instant};

    /// Wait this long between connect retries (a peer process may not
    /// have bound its listener yet — solo deployments).
    const RETRY_DELAY: Duration = Duration::from_millis(20);
    /// Reads serviced per connection per reactor iteration (~256 KiB).
    /// See [`Reactor::service_read`] — the bound keeps one flooding peer
    /// from starving everyone else's acks and timers.
    const MAX_READS_PER_PASS: usize = 16;
    /// On stop, keep flushing parked write buffers at most this long.
    const DRAIN_LIMIT: Duration = Duration::from_secs(5);

    /// Node-loop → reactor commands.
    enum Cmd<M> {
        /// Encode and send one protocol message.
        Send { to: NodeId, msg: M },
        /// Report quota completion to node 0 ([`TAG_DONE`], solo mode).
        Done,
        /// Broadcast [`TAG_SHUTDOWN`] to every peer (last finisher).
        Shutdown,
        /// Flush what can be flushed and exit the reactor.
        Stop,
    }

    /// Reactor → node-loop events.  The session layer already ran on the
    /// reactor side: data frames arrive deduplicated and acked, so only
    /// deliverable messages and control outcomes cross this channel.
    enum Up<M> {
        Msg {
            from: NodeId,
            deliver_at: Instant,
            msg: M,
        },
        Done,
        Shutdown,
    }

    /// One peer's connection state inside the reactor.
    struct PeerConn {
        /// `None` until a socket exists (acceptor side: until the
        /// handshake names this peer).
        stream: Option<TcpStream>,
        /// Transport-level setup (connect, or accept + handshake) done?
        connected: bool,
        /// Pending outbound bytes (consumed-prefix-compacting, so a slow
        /// peer bounds memory at the live backlog instead of growing it
        /// monotonically).  Frames queued before the connection exists
        /// park here too — on the connector side the first four bytes are
        /// the handshake itself, so it always leads whatever was queued
        /// early.
        wbuf: WriteBuf,
        /// Incremental inbound decoder.
        rbuf: FrameBuf,
        /// Is write-readiness part of the registered interest right now?
        want_write: bool,
        /// Next connect attempt (connector side, after a refusal).
        retry_at: Option<Instant>,
        /// The link is gone (EOF, error, fatal connect failure) — or is
        /// the self-slot, which never carries traffic.
        dead: bool,
    }

    impl PeerConn {
        fn parked(&self) -> usize {
            self.wbuf.pending()
        }
    }

    /// An accepted socket whose 4-byte handshake has not fully arrived.
    struct Pending {
        stream: TcpStream,
        got: Vec<u8>,
    }

    /// Per-peer reliable-session state (reactor-owned; the node loop
    /// never touches sequence numbers).
    struct Sessions<M> {
        cfg: Reliability,
        epoch: Instant,
        tx: Vec<TxSession<M>>,
        rx: Vec<RxBatch>,
        /// Retransmit deadline per peer — the RTO timer wheel (a min-scan
        /// over `n` slots; `n ≤ 256` keeps a real wheel unnecessary).
        deadline: Vec<Option<Instant>>,
    }

    impl<M: Clone> Sessions<M> {
        fn new(cfg: Reliability, n: usize) -> Self {
            Sessions {
                epoch: Instant::now(),
                tx: (0..n).map(|_| TxSession::new(cfg.window)).collect(),
                rx: vec![RxBatch::default(); n],
                deadline: vec![None; n],
                cfg,
            }
        }

        /// Now on the session time axis.
        fn now(&self) -> Time {
            Time::from_nanos(self.epoch.elapsed().as_nanos() as u64)
        }
    }

    struct Reactor<M: WireCodec + Clone> {
        me: NodeId,
        n: usize,
        addrs: Vec<SocketAddr>,
        poller: Poller,
        listener: TcpListener,
        wake_rx: UnixStream,
        woken: Arc<AtomicBool>,
        cmds: mpsc::Receiver<Cmd<M>>,
        up: mpsc::Sender<Up<M>>,
        conns: Vec<PeerConn>,
        pending: Vec<Option<Pending>>,
        sess: Option<Sessions<M>>,
        /// Per-inbound-link fault filters (`None` off-plan and at `me`).
        filters: Vec<Option<LinkFilter>>,
        extra: Duration,
        connect_deadline: Instant,
        counters: NetCounters,
        slot: Arc<Mutex<NetCounters>>,
        /// Reusable encode scratch (one frame at a time).
        buf: Vec<u8>,
        /// Reusable decode scratch (frame body, tag at `[0]`).
        scratch: Vec<u8>,
        /// `Some(deadline)` once [`Cmd::Stop`] arrived.
        draining: Option<Instant>,
    }

    impl<M: WireCodec + Clone> Reactor<M> {
        fn key_listener(&self) -> usize {
            self.n
        }
        fn key_wake(&self) -> usize {
            self.n + 1
        }
        fn key_pending_base(&self) -> usize {
            self.n + 2
        }

        fn run(mut self) {
            for peer in (self.me + 1)..self.n {
                self.start_connect(peer);
            }
            let mut events = Events::new();
            loop {
                self.publish();
                let timeout = self.next_timeout();
                if let Err(e) = self.poller.wait(&mut events, timeout) {
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    eprintln!("mra-net: reactor[{}] poll failed: {e}", self.me);
                    break;
                }
                for ev in events.iter() {
                    if ev.key == self.key_wake() {
                        self.drain_wake();
                    } else if ev.key == self.key_listener() {
                        self.accept_all();
                    } else if ev.key >= self.key_pending_base() {
                        self.service_pending(ev.key - self.key_pending_base());
                    } else {
                        if !self.conns[ev.key].connected && ev.writable {
                            self.finish_connect(ev.key);
                        }
                        if ev.readable {
                            self.service_read(ev.key);
                        }
                    }
                }
                self.drain_cmds();
                if self.draining.is_none() {
                    self.fire_timers();
                    self.queue_owed_acks();
                }
                self.flush_all();
                if let Some(dl) = self.draining {
                    if self.all_flushed() || Instant::now() >= dl {
                        break;
                    }
                }
            }
            self.publish();
            // Dropping `up` here unblocks a node loop still in `recv`
            // (its channel errors into `PortEvent::Shutdown`).
        }

        fn publish(&self) {
            let mut g = self.slot.lock().unwrap_or_else(|e| e.into_inner());
            // `clone_from`, not assignment: reuses the slot's `by_kind`
            // allocation, keeping the once-per-iteration publish free of
            // heap traffic.
            g.clone_from(&self.counters);
        }

        /// The earliest pending deadline — RTOs, connect retries, the
        /// drain limit — as a poll timeout.  `None` blocks until I/O or
        /// a wakeup.
        fn next_timeout(&self) -> Option<Duration> {
            let mut next: Option<Instant> = self.draining;
            let mut fold = |t: Instant| match next {
                Some(cur) if cur <= t => {}
                _ => next = Some(t),
            };
            for c in &self.conns {
                if let Some(t) = c.retry_at {
                    fold(t);
                }
            }
            if self.draining.is_none() {
                if let Some(s) = &self.sess {
                    for t in s.deadline.iter().flatten() {
                        fold(*t);
                    }
                }
            }
            next.map(|t| t.saturating_duration_since(Instant::now()))
        }

        fn drain_wake(&mut self) {
            let mut sink = [0u8; 64];
            loop {
                match (&self.wake_rx).read(&mut sink) {
                    Ok(0) => break, // port side gone; the cmd channel decides
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break, // WouldBlock: drained
                }
            }
            // Clear AFTER draining the pipe and BEFORE draining the cmd
            // queue: a sender enqueueing between this store and the drain
            // sees `false` and writes a fresh byte — no lost wakeup.
            self.woken.store(false, Ordering::Release);
        }

        fn drain_cmds(&mut self) {
            while let Ok(cmd) = self.cmds.try_recv() {
                match cmd {
                    Cmd::Send { to, msg } => self.queue_data(to, &msg),
                    Cmd::Done => self.queue_ctrl(0, TAG_DONE, "Done"),
                    Cmd::Shutdown => {
                        for peer in 0..self.n {
                            if peer != self.me {
                                self.queue_ctrl(peer, TAG_SHUTDOWN, "Shutdown");
                            }
                        }
                    }
                    Cmd::Stop => {
                        self.draining.get_or_insert(Instant::now() + DRAIN_LIMIT);
                    }
                }
            }
        }

        /// Encode one protocol message into `to`'s write queue (session
        /// framing + piggybacked ack when reliability is on).  The bytes
        /// ride the next flush — possibly sharing a `write(2)` with every
        /// other frame queued to `to` this iteration.
        fn queue_data(&mut self, to: NodeId, msg: &M) {
            if to == self.me || self.conns[to].dead {
                return;
            }
            begin_frame(&mut self.buf);
            let (tag, label) = match self.sess.as_mut() {
                None => {
                    msg.encode(&mut self.buf);
                    (TAG_MSG, "Msg")
                }
                Some(s) => {
                    let now = s.now();
                    let seq = s.tx[to].send(msg, now);
                    // Piggybacking consumes the owed flag: no standalone
                    // ack will follow for what this frame already carries.
                    let ack = s.rx[to].piggyback();
                    self.buf.extend_from_slice(&seq.to_le_bytes());
                    self.buf.extend_from_slice(&ack.to_le_bytes());
                    msg.encode(&mut self.buf);
                    if s.deadline[to].is_none() {
                        s.deadline[to] =
                            Some(Instant::now() + s.tx[to].rto_delay(&s.cfg).to_std());
                    }
                    (TAG_RDATA, "RData")
                }
            };
            end_frame(&mut self.buf, tag);
            self.conns[to].wbuf.queue(&self.buf);
            self.counters.frames_out += 1;
            self.counters.by_kind.bump(label, 1);
        }

        /// Queue an empty control frame ([`TAG_DONE`] / [`TAG_SHUTDOWN`]).
        fn queue_ctrl(&mut self, to: NodeId, tag: u8, label: &'static str) {
            if to == self.me || self.conns[to].dead {
                return;
            }
            begin_frame(&mut self.buf);
            end_frame(&mut self.buf, tag);
            self.conns[to].wbuf.queue(&self.buf);
            self.counters.frames_out += 1;
            self.counters.by_kind.bump(label, 1);
        }

        /// Connect retries and retransmit timers.
        fn fire_timers(&mut self) {
            let wall = Instant::now();
            for peer in 0..self.n {
                if self.conns[peer].retry_at.is_some_and(|t| t <= wall) {
                    self.conns[peer].retry_at = None;
                    self.start_connect(peer);
                }
            }
            let Reactor { sess, conns, buf, counters, .. } = self;
            let Some(s) = sess.as_mut() else {
                return;
            };
            let now = s.now();
            let Sessions { cfg, epoch, tx, rx, deadline } = s;
            for (peer, dl) in deadline.iter_mut().enumerate() {
                if !dl.is_some_and(|d| d <= wall) {
                    continue;
                }
                if !conns[peer].connected {
                    // The link is still forming (connect retry, handshake
                    // in flight): every frame is parked locally, nothing
                    // can have been lost yet.  Firing the RTO here would
                    // queue a duplicate copy of the whole unacked window
                    // per expiry — pure wbuf growth and bogus retransmit
                    // counts on a perfect link.  Defer without touching
                    // the session's backoff state.
                    *dl = Some(wall + tx[peer].rto_delay(cfg).to_std());
                    continue;
                }
                match tx[peer].on_rto(now, cfg) {
                    RtoVerdict::Idle => *dl = None,
                    RtoVerdict::Rearm(at) => *dl = Some(*epoch + at.to_std()),
                    RtoVerdict::Retransmit(_) => {
                        counters.rto_fires += 1;
                        // Re-ack without consuming the owed flag: a
                        // retransmission is not fresh inbound data, so it
                        // must not suppress a standalone ack the peer may
                        // still need.
                        let ack = rx[peer].cum();
                        if !conns[peer].dead {
                            for (seq, msg) in tx[peer].unacked() {
                                begin_frame(buf);
                                buf.extend_from_slice(&seq.to_le_bytes());
                                buf.extend_from_slice(&ack.to_le_bytes());
                                msg.encode(buf);
                                end_frame(buf, TAG_RDATA);
                                conns[peer].wbuf.queue(buf);
                                counters.retransmit_frames += 1;
                                counters.by_kind.bump("RData", 1);
                            }
                        }
                        *dl = Some(wall + tx[peer].rto_delay(cfg).to_std());
                    }
                }
            }
        }

        /// Flush owed session acks: at most **one** standalone
        /// [`TAG_RACK`] per peer per iteration, and none at all when a
        /// data frame queued this pass already piggybacked it (its
        /// [`RxBatch::piggyback`] consumed the flag).  This is the ack
        /// batching the threaded transport lacks — it acks every data
        /// frame individually, straight to the socket.
        fn queue_owed_acks(&mut self) {
            let Reactor { sess, conns, buf, counters, .. } = self;
            let Some(s) = sess.as_mut() else {
                return;
            };
            for (peer, c) in conns.iter_mut().enumerate() {
                if c.dead {
                    continue;
                }
                if let Some(ack) = s.rx[peer].take_owed() {
                    begin_frame(buf);
                    buf.extend_from_slice(&ack.to_le_bytes());
                    end_frame(buf, TAG_RACK);
                    c.wbuf.queue(buf);
                    counters.ack_frames += 1;
                    counters.by_kind.bump("RAck", 1);
                }
            }
        }

        /// Start (or retry) the nonblocking connect to `peer`.
        fn start_connect(&mut self, peer: NodeId) {
            debug_assert!(peer > self.me);
            if self.conns[peer].dead {
                return;
            }
            if self.conns[peer].wbuf.is_empty() {
                // First attempt: the handshake leads the write queue, so
                // it hits the wire before any frame queued while the
                // connection was still forming.
                let hs = (self.me as u32).to_le_bytes();
                self.conns[peer].wbuf.queue(&hs);
            }
            match sys::connect_nonblocking(self.addrs[peer]) {
                Ok(stream) => {
                    if self.poller.add(&stream, Event::writable(peer)).is_err() {
                        self.fatal_link(peer);
                        return;
                    }
                    let c = &mut self.conns[peer];
                    c.stream = Some(stream);
                    c.connected = false;
                    c.want_write = true;
                }
                Err(e) => self.retry_or_die(peer, e),
            }
        }

        /// A connect-in-flight socket became writable: resolve it.
        fn finish_connect(&mut self, peer: NodeId) {
            let verdict = match self.conns[peer].stream.as_ref() {
                None => return,
                Some(s) => s.take_error(),
            };
            match verdict {
                Ok(None) => {
                    let c = &mut self.conns[peer];
                    let s = c.stream.as_ref().expect("stream checked above");
                    let _ = s.set_nodelay(true);
                    let want = c.parked() > 0;
                    let ev = Event { key: peer, readable: true, writable: want };
                    if self.poller.modify(s, ev).is_err() {
                        self.fatal_link(peer);
                        return;
                    }
                    c.connected = true;
                    c.want_write = want;
                    self.session_link_up(peer);
                }
                Ok(Some(e)) | Err(e) => {
                    if let Some(s) = self.conns[peer].stream.take() {
                        let _ = self.poller.delete(&s);
                    }
                    self.retry_or_die(peer, e);
                }
            }
        }

        fn retry_or_die(&mut self, peer: NodeId, e: io::Error) {
            if Instant::now() < self.connect_deadline {
                self.conns[peer].retry_at = Some(Instant::now() + RETRY_DELAY);
            } else {
                eprintln!(
                    "mra-net: reactor[{}]: connecting to node {peer} ({}) timed out: {e}",
                    self.me, self.addrs[peer]
                );
                self.fatal_link(peer);
            }
        }

        /// Tear down one link.  Outside draining this also tells the node
        /// loop the run is over — peers only close links on shutdown (or
        /// breakage), the same contract as the threaded reader threads.
        fn fatal_link(&mut self, peer: NodeId) {
            if let Some(s) = self.conns[peer].stream.take() {
                let _ = self.poller.delete(&s);
            }
            let c = &mut self.conns[peer];
            c.dead = true;
            c.connected = false;
            c.wbuf.clear();
            c.retry_at = None;
            if self.draining.is_none() {
                let _ = self.up.send(Up::Shutdown);
            }
        }

        /// Accept every connection the backlog holds.
        fn accept_all(&mut self) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let idx = match self.pending.iter().position(Option::is_none) {
                            Some(i) => i,
                            None => {
                                self.pending.push(None);
                                self.pending.len() - 1
                            }
                        };
                        let key = self.key_pending_base() + idx;
                        if self.poller.add(&stream, Event::readable(key)).is_ok() {
                            self.pending[idx] =
                                Some(Pending { stream, got: Vec::with_capacity(4) });
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        eprintln!("mra-net: reactor[{}] accept failed: {e}", self.me);
                        break;
                    }
                }
            }
        }

        /// Read handshake bytes off an accepted socket; promote it into
        /// its peer slot once the 4-byte node id is complete.
        fn service_pending(&mut self, idx: usize) {
            let mut complete = false;
            let mut broken = false;
            {
                let Some(p) = self.pending.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                let mut b = [0u8; 4];
                loop {
                    let need = 4 - p.got.len();
                    if need == 0 {
                        complete = true;
                        break;
                    }
                    match p.stream.read(&mut b[..need]) {
                        Ok(0) => {
                            broken = true;
                            break;
                        }
                        Ok(k) => p.got.extend_from_slice(&b[..k]),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            broken = true;
                            break;
                        }
                    }
                }
            }
            if broken {
                if let Some(p) = self.pending[idx].take() {
                    let _ = self.poller.delete(&p.stream);
                }
                return;
            }
            if !complete {
                return;
            }
            let p = self.pending[idx].take().expect("pending checked above");
            let id = u32::from_le_bytes(p.got[..4].try_into().expect("4 bytes")) as usize;
            // Bidirectional topology: only smaller ids connect to us, and
            // each unordered pair has exactly one connection.
            if id >= self.me || self.conns[id].stream.is_some() || self.conns[id].dead {
                eprintln!(
                    "mra-net: reactor[{}]: dropping connection with bad handshake id {id}",
                    self.me
                );
                let _ = self.poller.delete(&p.stream);
                return;
            }
            let _ = p.stream.set_nodelay(true);
            let _ = self.poller.delete(&p.stream);
            let want = self.conns[id].parked() > 0;
            let ev = Event { key: id, readable: true, writable: want };
            if self.poller.add(&p.stream, ev).is_err() {
                return;
            }
            let c = &mut self.conns[id];
            c.stream = Some(p.stream);
            c.connected = true;
            c.want_write = want;
            self.session_link_up(id);
        }

        /// The transport to `peer` just became usable: restart the RTO
        /// clocks of any frames that were queued (and session-stamped)
        /// while the link was still forming — their first copies only
        /// now get a wire to ride.
        fn session_link_up(&mut self, peer: NodeId) {
            if let Some(s) = self.sess.as_mut() {
                if s.tx[peer].has_unacked() {
                    let now = s.now();
                    s.tx[peer].link_up(now);
                    s.deadline[peer] =
                        Some(Instant::now() + s.tx[peer].rto_delay(&s.cfg).to_std());
                }
            }
        }

        /// Service a readable connection: reads into the incremental
        /// decoder, handling every complete frame as it appears.
        ///
        /// Bounded to [`MAX_READS_PER_PASS`] reads per call: a peer that
        /// floods faster than we decode would otherwise keep this loop
        /// spinning for as long as the kernel has bytes, deferring the
        /// owed-ack drain, RTO timers and flushes for *every other peer*
        /// past their RTOs — the reverse path then sees spurious go-back-N
        /// retransmits with zero actual loss.  The poller is
        /// level-triggered and persistent, so leftover bytes re-report
        /// readability on the next `wait` immediately; bounding the pass
        /// costs nothing but interleaves the fairness-critical work.
        fn service_read(&mut self, peer: NodeId) {
            let mut reads = 0usize;
            loop {
                if reads >= MAX_READS_PER_PASS {
                    return;
                }
                reads += 1;
                let res = {
                    let c = &mut self.conns[peer];
                    let Some(s) = c.stream.as_mut() else {
                        return;
                    };
                    c.rbuf.read_from(s)
                };
                match res {
                    Ok(0) => {
                        self.fatal_link(peer);
                        return;
                    }
                    Ok(_) => {
                        self.counters.read_calls += 1;
                        loop {
                            match self.conns[peer].rbuf.next_frame_into(&mut self.scratch) {
                                Ok(Some(tag)) => {
                                    if !self.handle_frame(peer, tag) {
                                        self.fatal_link(peer);
                                        return;
                                    }
                                }
                                Ok(None) => break,
                                Err(e) => {
                                    eprintln!(
                                        "mra-net: reactor[{}]: dropping link from node {peer}: {e}",
                                        self.me
                                    );
                                    self.fatal_link(peer);
                                    return;
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.fatal_link(peer);
                        return;
                    }
                }
            }
        }

        /// Process one decoded frame (body in `self.scratch`, tag at
        /// `[0]`).  Returns false when the link must die — mode-mismatched
        /// or unknown tags and undecodable payloads, the same verdicts as
        /// the threaded reader's `_ =>` arm.
        fn handle_frame(&mut self, peer: NodeId, tag: u8) -> bool {
            // The wire is tallied before the fault filter — these numbers
            // describe what arrived, not what was delivered.
            self.counters.frames_in += 1;
            self.counters.bytes_in += self.scratch.len() as u64 + 4;
            let reliable = self.sess.is_some();
            match tag {
                TAG_MSG if !reliable => {
                    let Ok(msg) = M::from_bytes(&self.scratch[1..]) else {
                        return false;
                    };
                    // Drop verdicts lose the frame here (the wire-level
                    // loss point); duplicate verdicts are absorbed — TCP
                    // already delivered exactly once (see `MeshConfig`).
                    if let Some(f) = self.filters[peer].as_mut() {
                        if f.next_fate() == FrameFate::Drop {
                            return true;
                        }
                    }
                    let _ = self.up.send(Up::Msg {
                        from: peer,
                        deliver_at: Instant::now() + self.extra,
                        msg,
                    });
                    true
                }
                TAG_RDATA if reliable => {
                    let fate = self.filters[peer]
                        .as_mut()
                        .map_or(FrameFate::Deliver, LinkFilter::next_fate);
                    if fate == FrameFate::Drop {
                        return true;
                    }
                    let Ok((seq, ack, body)) = split_rdata(&self.scratch[1..]) else {
                        return false;
                    };
                    let Ok(msg) = M::from_bytes(body) else {
                        return false;
                    };
                    // A duplicate verdict replays the frame immediately
                    // behind the original; session dedup absorbs it.
                    let copies = if fate == FrameFate::Duplicate { 2 } else { 1 };
                    for _ in 0..copies {
                        self.session_data(peer, seq, ack, msg.clone());
                    }
                    true
                }
                TAG_RACK if reliable => {
                    let fate = self.filters[peer]
                        .as_mut()
                        .map_or(FrameFate::Deliver, LinkFilter::next_fate);
                    if fate == FrameFate::Drop {
                        return true;
                    }
                    let Ok(ack) = split_rack(&self.scratch[1..]) else {
                        return false;
                    };
                    // Cumulative acks are idempotent — a Duplicate verdict
                    // needs no second application.
                    self.session_ack(peer, ack);
                    true
                }
                TAG_DONE => {
                    let _ = self.up.send(Up::Done);
                    true
                }
                TAG_SHUTDOWN => {
                    let _ = self.up.send(Up::Shutdown);
                    true
                }
                _ => false,
            }
        }

        fn session_data(&mut self, peer: NodeId, seq: u64, ack: u64, msg: M) {
            let s = self.sess.as_mut().expect("rdata without reliability");
            // Piggybacked ack first, then the receive window.  Accepting
            // marks the ack owed; `queue_owed_acks` (or the piggyback of
            // the next outbound frame) settles it before the next flush.
            s.tx[peer].ack(ack);
            if !s.tx[peer].has_unacked() {
                s.deadline[peer] = None;
            }
            match s.rx[peer].accept(seq) {
                RxVerdict::Deliver => {
                    let _ = self.up.send(Up::Msg {
                        from: peer,
                        deliver_at: Instant::now() + self.extra,
                        msg,
                    });
                }
                RxVerdict::Stale | RxVerdict::Gap => {}
            }
        }

        fn session_ack(&mut self, peer: NodeId, ack: u64) {
            let s = self.sess.as_mut().expect("rack without reliability");
            s.tx[peer].ack(ack);
            if !s.tx[peer].has_unacked() {
                s.deadline[peer] = None;
            }
        }

        /// Write every connection's queued bytes — one `write(2)` per
        /// connection when the socket buffer takes it all, which is the
        /// point: every frame queued to the same peer this iteration
        /// shares that call.  A partial write parks the tail and arms
        /// write-readiness to resume.
        fn flush_all(&mut self) {
            for peer in 0..self.n {
                if peer != self.me {
                    self.flush(peer);
                }
            }
        }

        fn flush(&mut self, peer: NodeId) {
            let c = &mut self.conns[peer];
            if c.dead || !c.connected {
                return;
            }
            let Some(s) = c.stream.as_mut() else {
                return;
            };
            let mut broken = false;
            while !c.wbuf.is_empty() {
                match s.write(c.wbuf.unwritten()) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(k) => {
                        self.counters.write_calls += 1;
                        self.counters.bytes_out += k as u64;
                        // Partial writes advance a cursor; the consumed
                        // prefix compacts once it passes the threshold, so
                        // a slow peer costs the live backlog, not every
                        // byte ever parked.
                        c.wbuf.consume(k);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if broken {
                // Peer past shutdown — matches the threaded port's
                // ignored write errors; the read side sees the EOF and
                // ends the run if it matters.
                c.wbuf.clear();
                return;
            }
            let want = !c.wbuf.is_empty();
            if want != c.want_write {
                let ev = Event { key: peer, readable: true, writable: want };
                let s = c.stream.as_ref().expect("stream checked above");
                if self.poller.modify(s, ev).is_ok() {
                    c.want_write = want;
                }
            }
        }

        fn all_flushed(&self) -> bool {
            self.conns
                .iter()
                .all(|c| c.parked() == 0 || !c.connected || c.stream.is_none())
        }
    }

    /// [`NodePort`] over the reactor: the node loop's thin end of the
    /// command/event channels.  All sockets, sessions and timers live on
    /// the reactor thread; `send` is an enqueue plus at most one one-byte
    /// wakeup write.
    pub struct ReactorPort<M> {
        me: NodeId,
        ctrl: PortCtrl,
        cmd: mpsc::Sender<Cmd<M>>,
        up: mpsc::Receiver<Up<M>>,
        wake_tx: UnixStream,
        woken: Arc<AtomicBool>,
        slot: Arc<Mutex<NetCounters>>,
        metrics: bool,
        handle: Option<std::thread::JoinHandle<()>>,
    }

    impl<M> ReactorPort<M> {
        fn wake(&self) {
            if !self.woken.swap(true, Ordering::AcqRel) {
                // One pending byte at most; WouldBlock means a wakeup is
                // already in flight, which is all a wakeup can achieve.
                let _ = (&self.wake_tx).write(&[1]);
            }
        }

        /// Snapshot of the reactor's transport counters (refreshed every
        /// reactor iteration; final totals once the port has dropped).
        pub fn counters(&self) -> NetCounters {
            self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
        }

        fn wait(&mut self, deadline: Option<Instant>) -> PortEvent<M> {
            loop {
                let got = match deadline {
                    None => self.up.recv().map_err(|_| ()),
                    Some(d) => match self
                        .up
                        .recv_timeout(d.saturating_duration_since(Instant::now()))
                    {
                        Ok(up) => Ok(up),
                        Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
                        Err(mpsc::RecvTimeoutError::Timeout) => return PortEvent::TimedOut,
                    },
                };
                match got {
                    Err(()) => return PortEvent::Shutdown,
                    // Stamp 0 for the same reason as the threaded port:
                    // the wire format carries no Lamport stamps (§11).
                    Ok(Up::Msg { from, deliver_at, msg }) => {
                        return PortEvent::Msg { from, deliver_at, stamp: 0, msg }
                    }
                    Ok(Up::Shutdown) => return PortEvent::Shutdown,
                    Ok(Up::Done) => {
                        if self.ctrl.peer_done() {
                            let _ = self.cmd.send(Cmd::Shutdown);
                            self.wake();
                            return PortEvent::Shutdown;
                        }
                    }
                }
            }
        }
    }

    impl<M: WireCodec + Clone + Send> NodePort<M> for ReactorPort<M> {
        fn send(&mut self, to: NodeId, msg: M, _stamp: u64) {
            if self.cmd.send(Cmd::Send { to, msg }).is_ok() {
                self.wake();
            }
        }

        fn recv(&mut self) -> PortEvent<M> {
            self.wait(None)
        }

        fn recv_deadline(&mut self, deadline: Instant) -> PortEvent<M> {
            self.wait(Some(deadline))
        }

        fn quota_done(&mut self) -> bool {
            match self.ctrl.self_done(self.me) {
                DoneAct::LastFinisher => {
                    let _ = self.cmd.send(Cmd::Shutdown);
                    self.wake();
                    true
                }
                DoneAct::ReportDone => {
                    let _ = self.cmd.send(Cmd::Done);
                    self.wake();
                    false
                }
                DoneAct::Wait => false,
            }
        }
    }

    impl<M> Drop for ReactorPort<M> {
        fn drop(&mut self) {
            let _ = self.cmd.send(Cmd::Stop);
            self.wake();
            if let Some(h) = self.handle.take() {
                let _ = h.join();
            }
            if self.metrics {
                eprintln!("{}", self.counters().render(self.me));
            }
        }
    }

    /// Build node `me`'s reactor-backed mesh.  Unlike
    /// [`connect_mesh`](crate::connect_mesh) this returns immediately:
    /// connecting, accepting and handshaking proceed on the reactor
    /// thread, and frames sent before the mesh completes park in the
    /// per-peer write queues.  The caller must still have bound
    /// `listener` before any node starts connecting.
    pub fn connect_reactor_mesh<M>(
        me: NodeId,
        listener: TcpListener,
        dir: &PeerDirectory,
        ctrl: PortCtrl,
        cfg: MeshConfig,
    ) -> io::Result<ReactorPort<M>>
    where
        M: WireCodec + Clone + Send + 'static,
    {
        let n = dir.len();
        assert!(me < n, "node id {me} outside directory 0..{n}");
        let poller = Poller::new()?;
        listener.set_nonblocking(true)?;
        // std listens with backlog 128; every smaller peer SYNs at once
        // in a big mesh, and an overflow costs whole TCP-retry seconds.
        let _ = sys::listen_backlog(&listener, 4096);
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.add(&listener, Event::readable(n))?;
        poller.add(&wake_rx, Event::readable(n + 1))?;

        let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd<M>>();
        let (up_tx, up_rx) = mpsc::channel::<Up<M>>();
        let woken = Arc::new(AtomicBool::new(false));
        let slot = cfg
            .counters_slot
            .clone()
            .unwrap_or_else(|| Arc::new(Mutex::new(NetCounters::default())));
        let filters = (0..n)
            .map(|peer| {
                (peer != me)
                    .then(|| cfg.faults.as_ref().map(|plan| LinkFilter::new(plan, peer, me, n)))
                    .flatten()
            })
            .collect();
        let conns = (0..n)
            .map(|peer| PeerConn {
                stream: None,
                connected: false,
                wbuf: WriteBuf::new(),
                rbuf: FrameBuf::new(),
                want_write: false,
                retry_at: None,
                dead: peer == me,
            })
            .collect();
        let reactor = Reactor {
            me,
            n,
            addrs: (0..n).map(|i| dir.addr(i)).collect(),
            poller,
            listener,
            wake_rx,
            woken: Arc::clone(&woken),
            cmds: cmd_rx,
            up: up_tx,
            conns,
            pending: Vec::new(),
            sess: cfg.reliability.map(|r| Sessions::new(r, n)),
            filters,
            extra: cfg.extra_latency.to_std(),
            connect_deadline: Instant::now() + cfg.connect_timeout,
            counters: NetCounters::default(),
            slot: Arc::clone(&slot),
            buf: Vec::with_capacity(256),
            scratch: Vec::with_capacity(256),
            draining: None,
        };
        let handle = std::thread::Builder::new()
            .name(format!("mra-net-reactor-{me}"))
            .spawn(move || reactor.run())?;
        Ok(ReactorPort {
            me,
            ctrl,
            cmd: cmd_tx,
            up: up_rx,
            wake_tx,
            woken,
            slot,
            metrics: cfg.metrics,
            handle: Some(handle),
        })
    }
}

#[cfg(not(unix))]
mod stub {
    use crate::transport::{MeshConfig, PeerDirectory, PortCtrl};
    use mra_protocol::WireCodec;
    use mra_sim::{NodePort, PortEvent};
    use mra_types::NodeId;
    use std::io;
    use std::marker::PhantomData;
    use std::net::TcpListener;

    /// Unsupported on this platform; [`crate::NetBackend::from_env`]
    /// never selects the reactor here, so this exists only to keep the
    /// API surface uniform.
    pub struct ReactorPort<M>(PhantomData<M>);

    impl<M: WireCodec + Clone + Send> NodePort<M> for ReactorPort<M> {
        fn send(&mut self, _to: NodeId, _msg: M, _stamp: u64) {
            unreachable!("reactor transport is unix-only")
        }
        fn recv(&mut self) -> PortEvent<M> {
            unreachable!("reactor transport is unix-only")
        }
        fn recv_deadline(&mut self, _deadline: std::time::Instant) -> PortEvent<M> {
            unreachable!("reactor transport is unix-only")
        }
        fn quota_done(&mut self) -> bool {
            unreachable!("reactor transport is unix-only")
        }
    }

    pub fn connect_reactor_mesh<M>(
        _me: NodeId,
        _listener: TcpListener,
        _dir: &PeerDirectory,
        _ctrl: PortCtrl,
        _cfg: MeshConfig,
    ) -> io::Result<ReactorPort<M>>
    where
        M: WireCodec + Clone + Send + 'static,
    {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the reactor transport needs epoll/kqueue; use NetBackend::Threaded",
        ))
    }
}

#[cfg(not(unix))]
pub use stub::{connect_reactor_mesh, ReactorPort};

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use crate::transport::{MeshConfig, PeerDirectory, PortCtrl};
    use mra_protocol::faults::{FaultPlan, FrameFate, LinkFilter};
    use mra_protocol::reliable::Reliability;
    use mra_sim::{NodePort, PortEvent};
    use mra_types::Time;
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn pair_dir() -> (TcpListener, TcpListener, PeerDirectory) {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let dir = PeerDirectory::new(vec![l0.local_addr().unwrap(), l1.local_addr().unwrap()]);
        (l0, l1, dir)
    }

    fn kind<M>(ev: &PortEvent<M>) -> &'static str {
        match ev {
            PortEvent::Msg { .. } => "Msg",
            PortEvent::TimedOut => "TimedOut",
            PortEvent::Shutdown => "Shutdown",
        }
    }

    #[test]
    fn two_node_reactor_mesh_moves_messages() {
        let (l0, l1, dir) = pair_dir();
        let d0 = dir.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: ReactorPort<u64> =
                connect_reactor_mesh(0, l0, &d0, PortCtrl::Cluster(r0), MeshConfig::default())
                    .unwrap();
            p0.send(1, 0xDEAD_BEEF, 0);
            match p0.recv() {
                PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (1, 7)),
                other => panic!("expected message, got {}", kind(&other)),
            }
        });
        let mut p1: ReactorPort<u64> = connect_reactor_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            MeshConfig::default(),
        )
        .unwrap();
        p1.send(0, 7, 0);
        match p1.recv() {
            PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (0, 0xDEAD_BEEF)),
            other => panic!("expected message, got {}", kind(&other)),
        }
        t.join().unwrap();
    }

    #[test]
    fn reactor_drop_shim_loses_exactly_the_planned_frames() {
        // Same expectations as the threaded twin: the deterministic
        // per-link filter yields identical verdicts on both transports.
        let plan = FaultPlan::new(0xC0FFEE).drop_rate(0.3).dup_rate(0.1);
        const FRAMES: u64 = 200;
        let mut filter = LinkFilter::new(&plan, 0, 1, 2);
        let expected = (0..FRAMES)
            .filter(|_| filter.next_fate() != FrameFate::Drop)
            .count() as u64;
        assert!(expected > 0 && expected < FRAMES, "degenerate plan");

        let (l0, l1, dir) = pair_dir();
        let d0 = dir.clone();
        let shim = MeshConfig { faults: Some(plan), ..MeshConfig::default() };
        let cfg0 = shim.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: ReactorPort<u64> =
                connect_reactor_mesh(0, l0, &d0, PortCtrl::Cluster(r0), cfg0).unwrap();
            for k in 0..FRAMES {
                p0.send(1, k, 0);
            }
            // Dropping p0 stops its reactor, which flushes the parked
            // frames before closing; the peer then sees EOF.
        });
        let mut p1: ReactorPort<u64> = connect_reactor_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            shim,
        )
        .unwrap();
        let mut got = Vec::new();
        loop {
            match p1.recv() {
                PortEvent::Msg { from, msg, .. } => {
                    assert_eq!(from, 0);
                    got.push(msg);
                }
                PortEvent::Shutdown => break,
                PortEvent::TimedOut => unreachable!("recv never times out"),
            }
        }
        t.join().unwrap();
        assert_eq!(got.len() as u64, expected, "shim lost the wrong frames");
        // FIFO survives the shim: payloads arrive in send order.
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reliable_reactor_recovers_drops_and_batches_acks() {
        // The session contract — exactly-once, in-order delivery under a
        // lossy+duplicating shim — must survive coalesced acking, and the
        // receiver must *not* send one standalone ack per data frame the
        // way the threaded transport does.
        const FRAMES: u64 = 200;
        let plan = FaultPlan::new(0xC0FFEE).drop_rate(0.3).dup_rate(0.1);
        let shim = MeshConfig {
            faults: Some(plan),
            reliability: Some(Reliability::with_rto(Time::from_millis(5))),
            ..MeshConfig::default()
        };
        let (l0, l1, dir) = pair_dir();
        let d0 = dir.clone();
        let cfg0 = shim.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: ReactorPort<u64> =
                connect_reactor_mesh(0, l0, &d0, PortCtrl::Cluster(r0), cfg0).unwrap();
            for k in 0..FRAMES {
                p0.send(1, k, 0);
            }
            // The reactor retransmits on its own timers; the node loop
            // just waits for the peer's reliable confirmation.
            match p0.recv_deadline(Instant::now() + Duration::from_secs(20)) {
                PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (1, u64::MAX)),
                PortEvent::Shutdown => panic!("peer vanished early"),
                PortEvent::TimedOut => panic!("confirmation never arrived"),
            }
        });
        let mut p1: ReactorPort<u64> = connect_reactor_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            shim,
        )
        .unwrap();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(20);
        while (got.len() as u64) < FRAMES {
            match p1.recv_deadline(deadline) {
                PortEvent::Msg { from, msg, .. } => {
                    assert_eq!(from, 0);
                    got.push(msg);
                }
                PortEvent::Shutdown => panic!("sender vanished early"),
                PortEvent::TimedOut => {
                    panic!("reliable link stalled with {}/{FRAMES} frames", got.len())
                }
            }
        }
        // Exactly once, in order — the session contract survives the
        // batched acking.
        assert_eq!(got, (0..FRAMES).collect::<Vec<u64>>());
        let c1 = p1.counters();
        // Ack batching: the receiver decoded ≥ FRAMES data frames (plus
        // duplicates and retransmissions) yet sent far fewer standalone
        // acks — a burst of arrivals owes one cumulative ack, and the
        // confirmation frame piggybacks instead of acking separately.
        assert!(
            c1.ack_frames < FRAMES / 2,
            "acks not batched: {} standalone acks for {FRAMES} frames",
            c1.ack_frames
        );
        assert!(c1.ack_frames > 0, "one-way traffic must owe standalone acks");
        p1.send(0, u64::MAX, 0);
        // Serve until the peer exits (its reactor's EOF shuts ours down).
        while !t.is_finished() {
            match p1.recv_deadline(Instant::now() + Duration::from_millis(50)) {
                PortEvent::Shutdown => break,
                _ => continue,
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn reactor_coalesces_frames_into_fewer_writes() {
        // A burst of sends — queued while the mesh is still forming or
        // between reactor iterations — must share write syscalls:
        // strictly fewer `write(2)`s than frames.
        const BURST: u64 = 100;
        let (l0, l1, dir) = pair_dir();
        let d0 = dir.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: ReactorPort<u64> =
                connect_reactor_mesh(0, l0, &d0, PortCtrl::Cluster(r0), MeshConfig::default())
                    .unwrap();
            for k in 0..BURST {
                p0.send(1, k, 0);
            }
            match p0.recv_deadline(Instant::now() + Duration::from_secs(10)) {
                PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (1, 1)),
                other => panic!("expected confirmation, got {}", kind(&other)),
            }
            let c0 = p0.counters();
            assert_eq!(c0.frames_out, BURST);
            assert!(
                c0.write_calls < BURST,
                "no coalescing: {} writes for {BURST} frames",
                c0.write_calls
            );
        });
        let mut p1: ReactorPort<u64> = connect_reactor_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            MeshConfig::default(),
        )
        .unwrap();
        for want in 0..BURST {
            match p1.recv_deadline(Instant::now() + Duration::from_secs(10)) {
                PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (0, want)),
                other => panic!("expected frame {want}, got {}", kind(&other)),
            }
        }
        p1.send(0, 1, 0);
        while !t.is_finished() {
            match p1.recv_deadline(Instant::now() + Duration::from_millis(50)) {
                PortEvent::Shutdown => break,
                _ => continue,
            }
        }
        t.join().unwrap();
    }

    /// Re-bind a just-released address (the test advertises it before the
    /// listener exists to force connect retries on the other side).
    fn bind_retry(addr: std::net::SocketAddr) -> TcpListener {
        for _ in 0..50 {
            match TcpListener::bind(addr) {
                Ok(l) => return l,
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        panic!("could not re-bind {addr}");
    }

    #[test]
    fn reactor_rto_holds_while_link_forms() {
        // Regression: a frame queued while the peer's listener is not
        // even up must NOT trip the RTO.  fire_timers used to run
        // `on_rto` for unconnected peers, queueing a duplicate of the
        // whole unacked window per expiry — nonzero retransmit counters
        // on a link that never lost a byte (and, symmetrically, frames
        // session-stamped while parked used to fire the instant the
        // link came up).  RTO 250 ms << the 2 s the link spends forming,
        // but >> the loopback ack round-trip once it exists.
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a1 = TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
        // The listener for node 1 is now dropped: node 0's connects get
        // refused and retried while its frame sits parked.
        let dir = PeerDirectory::new(vec![l0.local_addr().unwrap(), a1]);
        let shim = MeshConfig {
            reliability: Some(Reliability::with_rto(Time::from_millis(250))),
            ..MeshConfig::default()
        };
        let d0 = dir.clone();
        let cfg0 = shim.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: ReactorPort<u64> =
                connect_reactor_mesh(0, l0, &d0, PortCtrl::Cluster(r0), cfg0).unwrap();
            p0.send(1, 42, 0);
            match p0.recv_deadline(Instant::now() + Duration::from_secs(20)) {
                PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (1, 7)),
                other => panic!("expected confirmation, got {}", kind(&other)),
            }
            let c0 = p0.counters();
            assert_eq!(
                (c0.rto_fires, c0.retransmit_frames),
                (0, 0),
                "perfect link, peer merely slow to start: nothing may retransmit"
            );
        });
        // Long enough for several RTO expiries (250, +500, +1000 ms)
        // while the connection cannot form.
        std::thread::sleep(Duration::from_secs(2));
        let l1 = bind_retry(a1);
        let mut p1: ReactorPort<u64> = connect_reactor_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            shim,
        )
        .unwrap();
        match p1.recv_deadline(Instant::now() + Duration::from_secs(20)) {
            PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (0, 42)),
            other => panic!("expected the parked frame, got {}", kind(&other)),
        }
        p1.send(0, 7, 0);
        while !t.is_finished() {
            match p1.recv_deadline(Instant::now() + Duration::from_millis(50)) {
                PortEvent::Shutdown => break,
                _ => continue,
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn reactor_asymmetric_flood_perfect_link_no_retransmits() {
        // Sustained one-way traffic with reliability on: every ack back
        // is a standalone TAG_RACK (no reverse data to piggyback on).
        // On a perfect link nothing may retransmit — the bounded
        // per-pass read drain guarantees the receiver's owed-ack queue
        // runs every reactor iteration even while inbound is saturated.
        const FRAMES: u64 = 20_000;
        const BURST: u64 = 500;
        let shim = MeshConfig {
            reliability: Some(Reliability::with_rto(Time::from_millis(200))),
            ..MeshConfig::default()
        };
        let (l0, l1, dir) = pair_dir();
        let d0 = dir.clone();
        let cfg0 = shim.clone();
        let remaining = Arc::new(AtomicUsize::new(2));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: ReactorPort<u64> =
                connect_reactor_mesh(0, l0, &d0, PortCtrl::Cluster(r0), cfg0).unwrap();
            for k in 0..FRAMES {
                p0.send(1, k, 0);
                if (k + 1) % BURST == 0 {
                    // Open-loop pacing: keep the in-flight window modest
                    // so a retransmit could only come from deferred acks,
                    // never from frames aging in our own parked backlog.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            match p0.recv_deadline(Instant::now() + Duration::from_secs(20)) {
                PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (1, u64::MAX)),
                other => panic!("expected confirmation, got {}", kind(&other)),
            }
            let c0 = p0.counters();
            assert_eq!(
                c0.retransmit_frames, 0,
                "perfect link but {} RTO fires — acks deferred past the timer",
                c0.rto_fires
            );
        });
        let mut p1: ReactorPort<u64> = connect_reactor_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            shim,
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        for want in 0..FRAMES {
            match p1.recv_deadline(deadline) {
                PortEvent::Msg { from, msg, .. } => assert_eq!((from, msg), (0, want)),
                other => panic!("expected frame {want}, got {}", kind(&other)),
            }
        }
        let c1 = p1.counters();
        assert!(c1.ack_frames > 0, "one-way traffic must owe standalone acks");
        p1.send(0, u64::MAX, 0);
        while !t.is_finished() {
            match p1.recv_deadline(Instant::now() + Duration::from_millis(50)) {
                PortEvent::Shutdown => break,
                _ => continue,
            }
        }
        t.join().unwrap();
    }

    #[test]
    fn reactor_last_finisher_shutdown_reaches_peer() {
        let (l0, l1, dir) = pair_dir();
        let d0 = dir.clone();
        let remaining = Arc::new(AtomicUsize::new(1));
        let r0 = Arc::clone(&remaining);
        let t = std::thread::spawn(move || {
            let mut p0: ReactorPort<u64> =
                connect_reactor_mesh(0, l0, &d0, PortCtrl::Cluster(r0), MeshConfig::default())
                    .unwrap();
            assert!(p0.quota_done());
        });
        let mut p1: ReactorPort<u64> = connect_reactor_mesh(
            1,
            l1,
            &dir,
            PortCtrl::Cluster(Arc::clone(&remaining)),
            MeshConfig::default(),
        )
        .unwrap();
        assert!(matches!(p1.recv(), PortEvent::Shutdown));
        t.join().unwrap();
    }
}
