//! Property coverage for the reactor's incremental frame decoder.
//!
//! A nonblocking socket hands `FrameBuf` whatever bytes the kernel has —
//! a read can end mid-length-word, mid-payload, or hand back three frames
//! and half of a fourth.  These properties drive the decoder with
//! arbitrary frame sequences cut at arbitrary points and pin the one
//! contract the reactor depends on: every frame comes out exactly once,
//! in order, byte-identical, no matter where the reads land.

use mra_net::frame::{
    write_frame, FrameBuf, WriteBuf, MAX_FRAME, READ_CHUNK, RETAIN_LIMIT, TAG_MSG,
};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{self, Read};

/// A `Read` that returns at most the next scheduled chunk size per call —
/// the adversarial kernel.  The schedule cycles so any split list covers
/// any wire length.
struct Dribble<'a> {
    wire: &'a [u8],
    pos: usize,
    splits: &'a [usize],
    turn: usize,
}

impl Read for Dribble<'_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        let chunk = self.splits[self.turn % self.splits.len()];
        self.turn += 1;
        let n = chunk.min(out.len()).min(self.wire.len() - self.pos);
        out[..n].copy_from_slice(&self.wire[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// One legal frame: any tag the wire format allows room for, payload from
/// empty through a few KiB (`write_frame` caps body size at `MAX_FRAME`).
fn any_frame() -> impl Strategy<Value = (u8, Vec<u8>)> {
    let payload = prop_oneof![
        vec(any::<u8>(), 0..64),
        vec(any::<u8>(), 64..600),
        vec(any::<u8>(), 4000..5000),
    ];
    (any::<u8>(), payload)
}

/// Decode everything `fb` can yield right now, appending to `got`.
fn drain(fb: &mut FrameBuf, scratch: &mut Vec<u8>, got: &mut Vec<(u8, Vec<u8>)>) {
    while let Some(tag) = fb.next_frame_into(scratch).expect("legal wire stream") {
        got.push((tag, scratch[1..].to_vec()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The load-bearing property: frames survive arbitrary read splits.
    #[test]
    fn frames_survive_arbitrary_read_splits(
        frames in vec(any_frame(), 1..16),
        splits in vec(1usize..700, 1..64),
    ) {
        let mut wire = Vec::new();
        for (tag, payload) in &frames {
            write_frame(&mut wire, *tag, payload).unwrap();
        }
        let mut r = Dribble { wire: &wire, pos: 0, splits: &splits, turn: 0 };
        let mut fb = FrameBuf::new();
        let mut scratch = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = fb.read_from(&mut r).unwrap();
            // Decode after *every* read, like the reactor does, so partial
            // frames are observed at every possible boundary.
            drain(&mut fb, &mut scratch, &mut got);
            if n == 0 {
                break;
            }
        }
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(fb.pending(), 0, "undecoded tail after a whole stream");
    }

    /// Byte-at-a-time is the worst dribble; also checks `pending()` only
    /// ever holds a partial frame (less than header + max body).  Small
    /// payloads: one `read_from` call per *byte* makes big frames
    /// needlessly slow, and the split-position coverage is identical.
    #[test]
    fn single_byte_reads_decode_identically(
        frames in vec((any::<u8>(), vec(any::<u8>(), 0..80)), 1..6),
    ) {
        let mut wire = Vec::new();
        for (tag, payload) in &frames {
            write_frame(&mut wire, *tag, payload).unwrap();
        }
        let splits = [1usize];
        let mut r = Dribble { wire: &wire, pos: 0, splits: &splits, turn: 0 };
        let mut fb = FrameBuf::new();
        let mut scratch = Vec::new();
        let mut got = Vec::new();
        loop {
            let n = fb.read_from(&mut r).unwrap();
            drain(&mut fb, &mut scratch, &mut got);
            prop_assert!(fb.pending() < 4 + MAX_FRAME);
            if n == 0 {
                break;
            }
        }
        prop_assert_eq!(&got, &frames);
    }

    /// Totality on garbage: random bytes never panic and never loop — the
    /// decoder either yields (possibly nonsense-tagged) frames, reports
    /// "need more", or errors out, and consumed progress is monotonic.
    #[test]
    fn arbitrary_bytes_never_panic(
        junk in vec(any::<u8>(), 0..2000),
        splits in vec(1usize..257, 1..16),
    ) {
        let mut r = Dribble { wire: &junk, pos: 0, splits: &splits, turn: 0 };
        let mut fb = FrameBuf::new();
        let mut scratch = Vec::new();
        loop {
            let n = fb.read_from(&mut r).unwrap();
            loop {
                match fb.next_frame_into(&mut scratch) {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    // A poisoned length word: the reactor kills the link.
                    Err(_) => return Ok(()),
                }
            }
            if n == 0 {
                break;
            }
        }
    }

    /// Storage stays bounded on a long-lived connection: whatever backlog
    /// a slow consumer builds up (reads outpacing decodes by an arbitrary
    /// factor, cut at arbitrary points), once the decoder catches up the
    /// backing store returns to the [`RETAIN_LIMIT`] envelope instead of
    /// pinning its high-water allocation forever.
    #[test]
    fn burst_storage_returns_to_bound_after_drain(
        frames in vec((any::<u8>(), 1usize..MAX_FRAME), 4..10),
        splits in vec(1usize..20_000, 1..16),
        drain_every in 2usize..9,
    ) {
        // Payload bytes are derived, not generated: multi-hundred-KiB
        // random vectors would dominate the test's runtime without
        // adding split coverage.
        let frames: Vec<(u8, Vec<u8>)> = frames
            .into_iter()
            .map(|(tag, len)| (tag, vec![(len % 251) as u8; len]))
            .collect();
        let mut wire = Vec::new();
        for (tag, payload) in &frames {
            write_frame(&mut wire, *tag, payload).unwrap();
        }
        let mut r = Dribble { wire: &wire, pos: 0, splits: &splits, turn: 0 };
        let mut fb = FrameBuf::new();
        let mut scratch = Vec::new();
        let mut got = Vec::new();
        let mut reads = 0usize;
        loop {
            let n = fb.read_from(&mut r).unwrap();
            reads += 1;
            // The slow consumer: only every `drain_every`-th read gets a
            // decode pass, so undecoded backlog genuinely accumulates.
            if reads % drain_every == 0 {
                drain(&mut fb, &mut scratch, &mut got);
            }
            if n == 0 {
                break;
            }
        }
        drain(&mut fb, &mut scratch, &mut got);
        prop_assert_eq!(&got, &frames);
        prop_assert_eq!(fb.pending(), 0);
        // The next read cycle after the catch-up releases burst storage.
        fb.read_from(&mut io::empty()).unwrap();
        prop_assert!(
            fb.capacity() <= RETAIN_LIMIT + READ_CHUNK,
            "high-water allocation pinned: {} bytes held, bound {}",
            fb.capacity(),
            RETAIN_LIMIT + READ_CHUNK
        );
    }

    /// The write-side twin: arbitrary queue/consume interleaves (a kernel
    /// accepting arbitrary partial writes) never lose or reorder bytes,
    /// and a fully drained queue returns burst storage to the
    /// [`RETAIN_LIMIT`] envelope.
    #[test]
    fn writebuf_survives_arbitrary_partial_writes(
        chunks in vec(1usize..5_000, 1..40),
        accepts in vec(1usize..3_000, 1..32),
    ) {
        let mut wb = WriteBuf::new();
        let mut expect: Vec<u8> = Vec::new();
        let mut fed = 0usize;
        for (turn, len) in chunks.iter().enumerate() {
            let bytes: Vec<u8> = (0..*len).map(|i| ((fed + i) % 251) as u8).collect();
            expect.extend_from_slice(&bytes);
            fed += len;
            wb.queue(&bytes);
            // The adversarial kernel accepts some prefix of what's owed.
            let k = accepts[turn % accepts.len()].min(wb.pending());
            prop_assert_eq!(wb.unwritten(), &expect[expect.len() - wb.pending()..]);
            wb.consume(k);
            prop_assert_eq!(wb.unwritten(), &expect[expect.len() - wb.pending()..]);
        }
        // Drain to empty: the backlog spike must not stay resident.
        let owed = wb.pending();
        prop_assert_eq!(wb.unwritten(), &expect[expect.len() - owed..]);
        wb.consume(owed);
        prop_assert!(wb.is_empty());
        prop_assert!(
            wb.capacity() <= RETAIN_LIMIT,
            "drained write queue holds {} bytes, bound {}",
            wb.capacity(),
            RETAIN_LIMIT
        );
    }

    /// A frame decoded through the incremental path is byte-identical to
    /// the blocking `read_frame` decode of the same wire image.
    #[test]
    fn incremental_matches_blocking_decoder(payload in vec(any::<u8>(), 0..600)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_MSG, &payload).unwrap();

        let mut blocking = Vec::new();
        let tag = mra_net::frame::read_frame(&mut io::Cursor::new(&wire), &mut blocking).unwrap();
        prop_assert_eq!(tag, TAG_MSG);

        let mut fb = FrameBuf::new();
        fb.read_from(&mut io::Cursor::new(&wire)).unwrap();
        let mut incremental = Vec::new();
        prop_assert_eq!(fb.next_frame_into(&mut incremental).unwrap(), Some(TAG_MSG));
        prop_assert_eq!(incremental, blocking);
    }
}
