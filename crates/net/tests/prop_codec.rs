//! Property-based round-trip coverage of every wire message variant:
//! `decode(encode(m)) == m` for the LASS, mutex and baseline protocols,
//! including max-size `ResourceSet`s and boundary counter values.
//!
//! Most message types deliberately omit `PartialEq` (tokens are stateful),
//! so equality is pinned two ways at once: the decoded value must
//! re-encode to byte-identical output (encode is deterministic and
//! injective on the value's wire image) and must render the same `Debug`
//! form.

use mra_baselines::{BlMsg, CentralMsg, ControlToken, CtEntry, IncMsg, MadMsg};
use mra_baselines::maddi::MadToken;
use mra_core::{CounterVal, LassMsg, LoanReq, Request, ResReq, Token};
use mra_mutex::{NtMsg, RayMsg, SkMsg, SkToken};
use mra_protocol::WireCodec;
use mra_types::{NodeSet, ResourceSet};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::fmt::Debug;

fn assert_roundtrip<T: WireCodec + Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = v.to_bytes();
    let back = T::from_bytes(&bytes)
        .map_err(|e| TestCaseError::fail(format!("decode failed: {e} for {v:?}")))?;
    prop_assert_eq!(&back.to_bytes(), &bytes, "re-encode differs for {:?}", v);
    prop_assert_eq!(format!("{back:?}"), format!("{v:?}"));
    Ok(())
}

/// Arbitrary dynamic set, biased toward interesting shapes: empty, sparse,
/// dense, full inline capacity, and sets past the 256-element inline
/// boundary (heap representation, length-prefixed multi-word encoding).
fn any_set() -> impl Strategy<Value = ResourceSet> {
    prop_oneof![
        Just(ResourceSet::EMPTY),
        Just(ResourceSet::full(256)),
        vec(0usize..256, 0..12).prop_map(|els| els.into_iter().collect()),
        (0usize..257).prop_map(ResourceSet::full),
        vec(0usize..100_000, 0..12).prop_map(|els| els.into_iter().collect()),
        (256usize..2000).prop_map(ResourceSet::full),
    ]
}

/// Counter-ish u64 including the boundary values.
fn any_counter() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        any::<u64>(),
    ]
}

/// Scheduling marks.  The protocol only ever produces finite marks
/// (`order_key` asserts it), so generators stay finite too; bit-exact
/// transport of NaN/inf is covered by the primitive codec tests in
/// `mra_protocol::wire`.
fn any_mark() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::MAX),
        Just(f64::MIN_POSITIVE),
        0.0f64..1e9,
    ]
}

fn any_res_req() -> impl Strategy<Value = ResReq> {
    (0usize..256, 0usize..256, any_counter(), any_mark())
        .prop_map(|(r, sinit, id, mark)| ResReq { r, sinit, id, mark })
}

fn any_loan_req() -> impl Strategy<Value = LoanReq> {
    (0usize..256, 0usize..256, any_counter(), any_mark(), any_set())
        .prop_map(|(r, sinit, id, mark, missing)| LoanReq { r, sinit, id, mark, missing })
}

fn any_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (0usize..256, 0usize..256, any_counter(), any::<bool>())
            .prop_map(|(r, sinit, id, single)| Request::Cnt { r, sinit, id, single }),
        any_res_req().prop_map(Request::Res),
        any_loan_req().prop_map(Request::Loan),
    ]
}

fn any_token() -> impl Strategy<Value = Token> {
    (
        (0usize..256, any_counter(), 1usize..33),
        vec(any_res_req(), 0..6),
        vec(any_loan_req(), 0..4),
        prop_oneof![Just(None), (0usize..256).prop_map(Some)],
        vec(any_counter(), 0..8),
    )
        .prop_map(|((r, counter, n), w_queue, w_loan, lender, stamps)| {
            let mut t = Token::new(r);
            t.counter = counter;
            for (i, s) in stamps.iter().enumerate() {
                t.set_last_req_c(i % n, *s);
                t.set_last_cs((i + 1) % n, s.wrapping_mul(3));
            }
            // Route queue entries through the real insertion paths so the
            // encoded token is one the protocol could actually produce.
            for q in w_queue {
                t.enqueue_res(q);
            }
            for q in w_loan {
                t.enqueue_loan(q);
            }
            t.lender = lender;
            t
        })
}

fn any_lass_msg() -> impl Strategy<Value = LassMsg> {
    prop_oneof![
        (any_set(), vec(any_request(), 0..8))
            .prop_map(|(visited, reqs)| LassMsg::Requests { visited, reqs }),
        vec(
            (0usize..256, any_counter(), any_counter())
                .prop_map(|(r, val, id)| CounterVal { r, val, id }),
            0..8
        )
        .prop_map(LassMsg::Counters),
        vec(any_token(), 0..4).prop_map(LassMsg::Tokens),
    ]
}

fn any_sk_msg() -> impl Strategy<Value = SkMsg> {
    prop_oneof![
        (0usize..256, any_counter()).prop_map(|(origin, seq)| SkMsg::Request { origin, seq }),
        (vec(any_counter(), 0..16), vec(0usize..256, 0..16)).prop_map(|(ln, q)| {
            SkMsg::Token(SkToken {
                ln,
                queue: VecDeque::from(q),
            })
        }),
    ]
}

fn any_control_token() -> impl Strategy<Value = ControlToken> {
    vec(
        prop_oneof![
            Just(CtEntry::Token),
            (0usize..256, 0u64..1 << 40).prop_map(|(s, e)| CtEntry::Last(s, e)),
        ],
        0..24,
    )
    .prop_map(|entries| ControlToken { entries })
}

fn any_bl_msg() -> impl Strategy<Value = BlMsg> {
    prop_oneof![
        (0usize..256).prop_map(|origin| BlMsg::Nt(NtMsg::Request { origin })),
        any_control_token().prop_map(|ct| BlMsg::Nt(NtMsg::Token(ct))),
        (0usize..256, 0usize..256, 0u64..1 << 40)
            .prop_map(|(r, from, pred)| BlMsg::Inquire { r, from, pred }),
        (0usize..256).prop_map(|r| BlMsg::ResTok { r }),
    ]
}

fn any_inc_msg() -> impl Strategy<Value = IncMsg> {
    prop_oneof![
        (0usize..256, 0usize..256)
            .prop_map(|(r, origin)| IncMsg { r, inner: NtMsg::Request { origin } }),
        (0usize..256).prop_map(|r| IncMsg { r, inner: NtMsg::Token(()) }),
    ]
}

fn any_mad_msg() -> impl Strategy<Value = MadMsg> {
    prop_oneof![
        (0usize..256, any_counter(), any_set())
            .prop_map(|(origin, ts, set)| MadMsg::Request { origin, ts, set }),
        (0usize..256, vec(any_counter(), 0..16))
            .prop_map(|(r, served)| MadMsg::Token { r, tok: MadToken { served } }),
    ]
}

fn any_central_msg() -> impl Strategy<Value = CentralMsg> {
    prop_oneof![
        any_set().prop_map(|set| CentralMsg::Request { set }),
        Just(CentralMsg::Grant),
        Just(CentralMsg::Release),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lass_messages_roundtrip(m in any_lass_msg()) {
        assert_roundtrip(&m)?;
    }

    #[test]
    fn naimi_trehel_messages_roundtrip(m in prop_oneof![
        (0usize..256).prop_map(|origin| NtMsg::<u64>::Request { origin }),
        any::<u64>().prop_map(NtMsg::Token),
    ]) {
        assert_roundtrip(&m)?;
    }

    #[test]
    fn suzuki_kasami_messages_roundtrip(m in any_sk_msg()) {
        assert_roundtrip(&m)?;
    }

    #[test]
    fn raymond_messages_roundtrip(token in any::<bool>()) {
        assert_roundtrip(&if token { RayMsg::Token } else { RayMsg::Request })?;
    }

    #[test]
    fn bouabdallah_laforest_messages_roundtrip(m in any_bl_msg()) {
        assert_roundtrip(&m)?;
    }

    #[test]
    fn incremental_messages_roundtrip(m in any_inc_msg()) {
        assert_roundtrip(&m)?;
    }

    #[test]
    fn maddi_messages_roundtrip(m in any_mad_msg()) {
        assert_roundtrip(&m)?;
    }

    #[test]
    fn central_messages_roundtrip(m in any_central_msg()) {
        assert_roundtrip(&m)?;
    }

    #[test]
    fn truncation_never_panics(m in any_lass_msg(), cut in 0usize..64) {
        // Any prefix of a valid encoding must decode to Err, not panic
        // (and never loop): the codec is total on corrupt input.
        let bytes = m.to_bytes();
        if cut < bytes.len() {
            prop_assert!(LassMsg::from_bytes(&bytes[..cut]).is_err());
        }
    }
}

/// Deterministic boundary cases the random generators might miss.
#[test]
fn boundary_values_roundtrip() {
    // Max-size resource set in every position that carries one.
    let full = ResourceSet::full(256);
    assert_roundtrip(&LassMsg::Requests {
        visited: full.clone(),
        reqs: vec![Request::Loan(LoanReq {
            r: 255,
            sinit: 255,
            id: u64::MAX,
            mark: f64::MAX,
            missing: full.clone(),
        })],
    })
    .unwrap();
    assert_roundtrip(&MadMsg::Request { origin: 255, ts: u64::MAX, set: full.clone() }).unwrap();
    assert_roundtrip(&CentralMsg::Request { set: full }).unwrap();

    // A set past the inline boundary in every position that carries one.
    let big: ResourceSet = [0usize, 255, 256, 99_999].into_iter().collect();
    assert_roundtrip(&MadMsg::Request { origin: 255, ts: 1, set: big.clone() }).unwrap();
    assert_roundtrip(&CentralMsg::Request { set: big.clone() }).unwrap();
    assert_roundtrip(&LassMsg::Requests {
        visited: NodeSet::EMPTY,
        reqs: vec![Request::Loan(LoanReq { r: 99_999, sinit: 0, id: 1, mark: 0.5, missing: big })],
    })
    .unwrap();

    // Boundary counters everywhere a token carries them.
    let mut t = Token::new(255);
    t.counter = u64::MAX;
    for s in 0..32 {
        t.set_last_req_c(s, u64::MAX);
        t.set_last_cs(s, u64::MAX);
    }
    assert_roundtrip(&LassMsg::Tokens(vec![t])).unwrap();

    // Empty batches are legal wire messages.
    assert_roundtrip(&LassMsg::Counters(Vec::new())).unwrap();
    assert_roundtrip(&LassMsg::Tokens(Vec::new())).unwrap();
    assert_roundtrip(&LassMsg::Requests { visited: NodeSet::EMPTY, reqs: Vec::new() })
        .unwrap();
}
