//! Property coverage for the admission queue — the serving layer's
//! conservation core.
//!
//! The queue sits between an open-loop arrival stream and the allocation
//! engine, so its invariants are exactly the serving layer's correctness
//! story: every offered request is admitted or shed (never lost), admitted
//! requests come back out exactly once (never duplicated), shed requests
//! never come back out (never granted after shed), batches are pairwise
//! disjoint, and the depth/quota bounds actually bind.  These properties
//! drive random offer/pop interleavings against a flat reference model.

use proptest::collection::vec;
use proptest::prelude::*;

use mra_serve::{Admission, AdmissionQueue, ServeReq};
use mra_types::{ResourceSet, Time};

/// One scripted step against the queue.
#[derive(Clone, Debug)]
enum Step {
    /// Offer a request with this class and resource-bit pattern.
    Offer { class: usize, bits: u32 },
    /// Pop a batch with these limits.
    Pop { max_batch: usize, scan: usize },
}

fn any_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0usize..3, 1u32..=0xffff).prop_map(|(class, bits)| Step::Offer { class, bits }),
        (1usize..5, 0usize..8).prop_map(|(max_batch, scan)| Step::Pop { max_batch, scan }),
    ]
}

fn set_from_bits(bits: u32) -> ResourceSet {
    (0..32usize).filter(|i| bits >> i & 1 == 1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conservation under arbitrary offer/pop interleavings: admitted ==
    /// popped ∪ still-queued with no duplicates, shed ids never reappear,
    /// every batch is internally disjoint and headed by the oldest queued
    /// request, and depth/quota bounds hold at every step.
    #[test]
    fn admission_conserves_and_bounds(
        steps in vec(any_step(), 1..200),
        max_depth in 1usize..12,
        quota in prop_oneof![Just(None), (1usize..6).prop_map(Some)],
    ) {
        let classes = 3;
        let mut q = AdmissionQueue::new(max_depth, classes, quota);
        let mut next_id = 0u64;
        let mut admitted: Vec<u64> = Vec::new(); // ids, in admission order
        let mut shed: Vec<u64> = Vec::new();
        let mut popped: Vec<u64> = Vec::new();

        for step in steps {
            match step {
                Step::Offer { class, bits } => {
                    let id = next_id;
                    next_id += 1;
                    let was_empty = q.is_empty();
                    let verdict = q.offer(ServeReq {
                        id,
                        class,
                        set: set_from_bits(bits),
                        cs: Time::from_micros(10),
                        arrival: Time::from_nanos(id),
                    });
                    match verdict {
                        Admission::Admitted => admitted.push(id),
                        Admission::ShedDepth | Admission::ShedClass => {
                            prop_assert!(!was_empty, "an empty queue must admit");
                            shed.push(id);
                        }
                    }
                    prop_assert!(q.len() <= max_depth, "depth bound violated");
                }
                Step::Pop { max_batch, scan } => {
                    let before = q.len();
                    let batch = q.pop_batch(max_batch, scan);
                    prop_assert_eq!(q.len(), before - batch.len());
                    prop_assert!(batch.len() <= max_batch.max(1));
                    if before > 0 {
                        // The head of a batch is the oldest queued request.
                        let oldest_queued = admitted
                            .iter()
                            .copied()
                            .find(|id| !popped.contains(id))
                            .expect("queue non-empty implies an unpopped admit");
                        prop_assert_eq!(batch[0].id, oldest_queued);
                    } else {
                        prop_assert!(batch.is_empty());
                    }
                    // Pairwise disjoint within the batch.
                    let mut union = ResourceSet::default();
                    for r in &batch {
                        prop_assert!(r.set.is_disjoint(&union), "overlapping batch");
                        union.union_with(&r.set);
                        popped.push(r.id);
                    }
                }
            }
        }

        // No request granted after shed: popped ∩ shed = ∅.
        for id in &popped {
            prop_assert!(!shed.contains(id), "shed id {} was popped", id);
        }
        // No duplicates out.
        let mut sorted = popped.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), popped.len(), "request popped twice");
        // No admitted request lost: popped + drained == admitted exactly.
        let mut remaining: Vec<u64> = q.drain().into_iter().map(|r| r.id).collect();
        let mut all: Vec<u64> = popped.clone();
        all.append(&mut remaining);
        all.sort_unstable();
        let mut want = admitted.clone();
        want.sort_unstable();
        prop_assert_eq!(all, want, "admitted set not conserved");
        // Offer accounting is total: every id was admitted or shed.
        prop_assert_eq!(admitted.len() + shed.len(), next_id as usize);
    }
}
