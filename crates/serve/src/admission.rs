//! Bounded admission queue with per-class quotas and compatible-request
//! batching.
//!
//! The queue is the backpressure point of the serving layer: arrivals that
//! would grow it past `max_depth` (or past a class's quota) are *shed* and
//! accounted, never silently dropped.  Requests that are admitted are FIFO
//! by arrival; [`AdmissionQueue::pop_batch`] dequeues the head plus a
//! bounded look-ahead of pairwise-disjoint resource vectors so one
//! critical-section request can serve several callers at once.
//!
//! The type is deliberately pure (no clocks, no RNG, no engine types beyond
//! `ResourceSet`/`Time`) so its invariants — conservation, FIFO-head order,
//! batch disjointness, quota respect — are property-testable in isolation.

use std::collections::VecDeque;

use mra_types::{ResourceSet, Time};

/// One end-user allocation request as it exists inside the serving layer,
/// before it is folded into an engine-level critical-section request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeReq {
    /// Unique per-node request id, assigned by the arrival generator.
    pub id: u64,
    /// Service class (tenant / priority bucket) for quota accounting.
    pub class: usize,
    /// Resources the caller wants to hold simultaneously.
    pub set: ResourceSet,
    /// How long the caller will hold them once granted.
    pub cs: Time,
    /// Intended arrival instant (open-loop): when the caller *wanted* the
    /// request to start, independent of any queueing the server imposes.
    pub arrival: Time,
}

/// Verdict returned by [`AdmissionQueue::offer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The request was enqueued.
    Admitted,
    /// Rejected: the queue is at `max_depth`.
    ShedDepth,
    /// Rejected: the request's class is at its quota.
    ShedClass,
}

/// Bounded FIFO of pending [`ServeReq`]s with shed accounting.
///
/// Invariants (enforced here, verified again by property tests):
/// * depth never exceeds `max_depth`;
/// * per-class occupancy never exceeds `class_quota`;
/// * an *empty* queue always admits — backpressure exists to bound delay,
///   and rejecting work an idle server could start immediately would be
///   pure goodput loss (it also guarantees the engine's think timer, armed
///   exactly at the next arrival, always finds a request to issue);
/// * no admitted request is ever lost: everything admitted is eventually
///   returned by `pop_batch` or still queued.
#[derive(Debug)]
pub struct AdmissionQueue {
    q: VecDeque<ServeReq>,
    max_depth: usize,
    class_quota: usize,
    queued_by_class: Vec<usize>,
    /// Deepest the queue has ever been (for reports).
    pub high_water: usize,
}

impl AdmissionQueue {
    /// `classes` is the number of service classes; `class_quota = None`
    /// disables per-class limits.  `max_depth` is clamped to ≥ 1.
    pub fn new(max_depth: usize, classes: usize, class_quota: Option<usize>) -> Self {
        AdmissionQueue {
            q: VecDeque::new(),
            max_depth: max_depth.max(1),
            class_quota: class_quota.unwrap_or(usize::MAX),
            queued_by_class: vec![0; classes.max(1)],
            high_water: 0,
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Arrival instant of the oldest queued request, if any.
    pub fn front_arrival(&self) -> Option<Time> {
        self.q.front().map(|r| r.arrival)
    }

    /// Offer one request for admission.  Out-of-range classes are clamped
    /// into the configured class universe rather than rejected.
    pub fn offer(&mut self, mut req: ServeReq) -> Admission {
        if req.class >= self.queued_by_class.len() {
            req.class = self.queued_by_class.len() - 1;
        }
        if !self.q.is_empty() {
            if self.q.len() >= self.max_depth {
                return Admission::ShedDepth;
            }
            if self.queued_by_class[req.class] >= self.class_quota {
                return Admission::ShedClass;
            }
        }
        self.queued_by_class[req.class] += 1;
        self.q.push_back(req);
        self.high_water = self.high_water.max(self.q.len());
        Admission::Admitted
    }

    /// Dequeue the head request plus up to `max_batch - 1` more whose
    /// resource vectors are pairwise disjoint with everything already in
    /// the batch, scanning at most `scan` entries past the head.
    ///
    /// Returns an empty vec only when the queue is empty.  The first
    /// element of a non-empty batch is always the oldest queued request,
    /// so FIFO order of *service start* is preserved for the head even
    /// though later compatible requests may jump the line (they ride along
    /// in the same critical section, which can only start them earlier,
    /// never delay anyone in front of them).
    pub fn pop_batch(&mut self, max_batch: usize, scan: usize) -> Vec<ServeReq> {
        let mut batch = Vec::new();
        let Some(head) = self.q.pop_front() else {
            return batch;
        };
        self.queued_by_class[head.class] -= 1;
        let mut union = head.set.clone();
        batch.push(head);
        let max_batch = max_batch.max(1);
        let mut idx = 0;
        while batch.len() < max_batch && idx < scan.min(self.q.len()) {
            if self.q[idx].set.is_disjoint(&union) {
                let req = self.q.remove(idx).expect("index checked above");
                self.queued_by_class[req.class] -= 1;
                union.union_with(&req.set);
                batch.push(req);
            } else {
                idx += 1;
            }
        }
        batch
    }

    /// Drain everything still queued (used at end-of-run accounting).
    pub fn drain(&mut self) -> Vec<ServeReq> {
        for c in self.queued_by_class.iter_mut() {
            *c = 0;
        }
        self.q.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, class: usize, bits: &[usize]) -> ServeReq {
        ServeReq {
            id,
            class,
            set: bits.iter().copied().collect(),
            cs: Time::from_millis(1),
            arrival: Time::from_nanos(id),
        }
    }

    #[test]
    fn empty_queue_always_admits() {
        let mut q = AdmissionQueue::new(1, 2, Some(0));
        // Depth 1 and a zero class quota would both reject — but the queue
        // is empty, so the request must be admitted anyway.
        assert_eq!(q.offer(req(0, 1, &[0])), Admission::Admitted);
        assert_eq!(q.offer(req(1, 1, &[1])), Admission::ShedDepth);
    }

    #[test]
    fn depth_and_class_shed() {
        let mut q = AdmissionQueue::new(3, 2, Some(2));
        assert_eq!(q.offer(req(0, 0, &[0])), Admission::Admitted);
        assert_eq!(q.offer(req(1, 0, &[1])), Admission::Admitted);
        assert_eq!(q.offer(req(2, 0, &[2])), Admission::ShedClass);
        assert_eq!(q.offer(req(3, 1, &[3])), Admission::Admitted);
        assert_eq!(q.offer(req(4, 1, &[4])), Admission::ShedDepth);
        // Class quota frees up after a pop.
        let b = q.pop_batch(1, 0);
        assert_eq!(b[0].id, 0);
        assert_eq!(q.offer(req(5, 0, &[5])), Admission::Admitted);
        assert_eq!(q.len(), 3);
        assert_eq!(q.offer(req(6, 1, &[6])), Admission::ShedDepth);
        assert_eq!(q.high_water, 3);
    }

    #[test]
    fn batch_takes_disjoint_within_scan() {
        let mut q = AdmissionQueue::new(16, 1, None);
        q.offer(req(0, 0, &[0, 1]));
        q.offer(req(1, 0, &[1, 2])); // overlaps head
        q.offer(req(2, 0, &[3])); // disjoint
        q.offer(req(3, 0, &[4])); // disjoint but beyond batch cap below
        let b = q.pop_batch(2, 8);
        assert_eq!(b.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.front_arrival(), Some(Time::from_nanos(1)));
    }

    #[test]
    fn scan_zero_degenerates_to_fifo() {
        let mut q = AdmissionQueue::new(16, 1, None);
        q.offer(req(0, 0, &[0]));
        q.offer(req(1, 0, &[1]));
        let b = q.pop_batch(8, 0);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].id, 0);
    }
}
