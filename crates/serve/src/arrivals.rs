//! Seeded open-loop arrival processes.
//!
//! An [`ArrivalGen`] is an infinite, deterministic stream of
//! `(arrival_time, ServeReq)` pairs.  "Open loop" means the stream is a
//! function of the seed and the clock only: arrivals keep coming whether or
//! not the server keeps up, which is exactly what exposes coordinated
//! omission in latency measurement (a closed-loop driver would politely
//! stop arriving while the server is stuck).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mra_types::{ResourceSet, Time};

use crate::admission::ServeReq;

/// Interarrival-time process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Interarrival {
    /// Memoryless arrivals: exponential gaps with mean `1/rate_hz`.
    Poisson { rate_hz: f64 },
    /// Heavy-tailed, bursty arrivals: bounded-Pareto gaps with shape
    /// `alpha` (1 < α ≤ 2 is interesting) scaled so the *mean* gap is
    /// still `1/rate_hz`.  Same offered load as Poisson, much lumpier:
    /// most gaps are short (bursts), a few are very long (lulls).
    ParetoBurst { rate_hz: f64, alpha: f64 },
}

/// Bounded-Pareto tail cap, as a multiple of the mean gap.  Keeps a single
/// unlucky draw from stalling the stream for an entire simulation run.
const PARETO_CAP: f64 = 100.0;

impl Interarrival {
    /// Offered arrival rate in requests per second.
    pub fn rate_hz(&self) -> f64 {
        match *self {
            Interarrival::Poisson { rate_hz } => rate_hz,
            Interarrival::ParetoBurst { rate_hz, .. } => rate_hz,
        }
    }

    fn draw(&self, rng: &mut StdRng) -> Time {
        let u: f64 = rng.gen_range(0.0..1.0f64);
        match *self {
            Interarrival::Poisson { rate_hz } => {
                let mean = 1.0 / rate_hz.max(1e-9);
                Time::from_secs_f64(-mean * (1.0 - u).max(1e-12).ln())
            }
            Interarrival::ParetoBurst { rate_hz, alpha } => {
                let mean = 1.0 / rate_hz.max(1e-9);
                let a = alpha.max(1.01);
                // Pareto(xm, a) has mean xm·a/(a−1); pick xm so the mean
                // gap matches the requested rate, then cap the tail.
                let xm = mean * (a - 1.0) / a;
                let gap = xm / (1.0 - u).max(1e-12).powf(1.0 / a);
                Time::from_secs_f64(gap.min(mean * PARETO_CAP))
            }
        }
    }
}

/// Shape of the requests an [`ArrivalGen`] fabricates: resource universe,
/// request-size range and critical-section length range (linear in size,
/// matching the paper's workload).
#[derive(Clone, Debug)]
pub struct RequestShape {
    /// Resource universe size `M`.
    pub m: usize,
    /// Largest request size (the paper's φ); sizes are uniform `1..=phi`.
    pub phi: usize,
    /// CS duration for a size-1 request.
    pub cs_min: Time,
    /// CS duration for a size-φ request.
    pub cs_max: Time,
    /// Number of service classes; each request draws one uniformly.
    pub classes: usize,
}

impl RequestShape {
    fn draw(&self, rng: &mut StdRng) -> (usize, ResourceSet, Time) {
        let phi = self.phi.clamp(1, self.m.max(1));
        let size = rng.gen_range(1..=phi);
        let mut set = ResourceSet::default();
        while set.len() < size {
            set.insert(rng.gen_range(0..self.m.max(1)));
        }
        let frac = if phi > 1 {
            (size - 1) as f64 / (phi - 1) as f64
        } else {
            0.0
        };
        let span = self.cs_max.saturating_sub(self.cs_min);
        let cs = self.cs_min + span.mul_f64(frac);
        let class = rng.gen_range(0..self.classes.max(1));
        (class, set, cs)
    }
}

/// Deterministic per-node arrival stream.
///
/// The generator is *pull-based*: [`peek`](ArrivalGen::peek) exposes the
/// next arrival instant without consuming it, and
/// [`take`](ArrivalGen::take) consumes it and pre-draws the one after, so
/// callers can pump every arrival up to "now" and know exactly when to
/// wake next.
#[derive(Debug)]
pub struct ArrivalGen {
    rng: StdRng,
    iat: Interarrival,
    shape: RequestShape,
    next_at: Time,
    next_id: u64,
}

impl ArrivalGen {
    pub fn new(iat: Interarrival, shape: RequestShape, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // The stream starts one gap after t=0, not at t=0, so different
        // nodes (different seeds) don't all arrive in lockstep at origin.
        let first = iat.draw(&mut rng);
        ArrivalGen {
            rng,
            iat,
            shape,
            next_at: first,
            next_id: 0,
        }
    }

    /// Instant of the next (not yet consumed) arrival.
    pub fn peek(&self) -> Time {
        self.next_at
    }

    /// Consume the next arrival, returning the fabricated request stamped
    /// with its intended arrival time.
    pub fn take(&mut self) -> ServeReq {
        let arrival = self.next_at;
        let (class, set, cs) = self.shape.draw(&mut self.rng);
        let id = self.next_id;
        self.next_id += 1;
        self.next_at = arrival + self.iat.draw(&mut self.rng);
        ServeReq {
            id,
            class,
            set,
            cs,
            arrival,
        }
    }

    /// Total arrivals consumed so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> RequestShape {
        RequestShape {
            m: 16,
            phi: 4,
            cs_min: Time::from_millis(1),
            cs_max: Time::from_millis(4),
            classes: 2,
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mk = || ArrivalGen::new(Interarrival::Poisson { rate_hz: 500.0 }, shape(), 42);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..64 {
            assert_eq!(a.take(), b.take());
        }
        let mut c = ArrivalGen::new(Interarrival::Poisson { rate_hz: 500.0 }, shape(), 43);
        let same = (0..64).filter(|_| a2(&mut c) == a2(&mut b)).count();
        assert!(same < 64, "different seeds must differ");
        fn a2(g: &mut ArrivalGen) -> Time {
            g.take().arrival
        }
    }

    #[test]
    fn poisson_mean_gap_tracks_rate() {
        let mut g = ArrivalGen::new(Interarrival::Poisson { rate_hz: 1000.0 }, shape(), 7);
        let n = 4000;
        let mut last = Time::ZERO;
        for _ in 0..n {
            last = g.take().arrival;
        }
        let mean_gap = last.as_secs_f64() / n as f64;
        assert!(
            (mean_gap - 0.001).abs() < 0.0002,
            "mean gap {mean_gap} for 1 kHz"
        );
    }

    #[test]
    fn pareto_matches_rate_but_is_burstier() {
        let n = 6000;
        let run = |iat: Interarrival| {
            let mut g = ArrivalGen::new(iat, shape(), 11);
            let mut gaps = Vec::with_capacity(n);
            let mut prev = Time::ZERO;
            for _ in 0..n {
                let a = g.take().arrival;
                gaps.push(a.saturating_sub(prev).as_secs_f64());
                prev = a;
            }
            gaps
        };
        let p = run(Interarrival::Poisson { rate_hz: 200.0 });
        let b = run(Interarrival::ParetoBurst {
            rate_hz: 200.0,
            alpha: 1.5,
        });
        let mean = |g: &[f64]| g.iter().sum::<f64>() / g.len() as f64;
        let mp = mean(&p);
        let mb = mean(&b);
        assert!((mp - 0.005).abs() < 0.001, "poisson mean {mp}");
        assert!((mb - 0.005).abs() < 0.002, "pareto mean {mb}");
        let max = |g: &[f64]| g.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max(&b) > max(&p),
            "heavy tail should produce a longer max lull"
        );
        // Burstiness: squared coefficient of variation.  Exponential gaps
        // have CV² = 1; capped Pareto at α = 1.5 is far more variable.
        let cv2 = |g: &[f64]| {
            let m = mean(g);
            g.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (g.len() as f64 * m * m)
        };
        assert!(
            cv2(&b) > 2.0 * cv2(&p),
            "pareto cv² {} vs poisson {}",
            cv2(&b),
            cv2(&p)
        );
    }

    #[test]
    fn requests_are_well_formed() {
        let mut g = ArrivalGen::new(Interarrival::Poisson { rate_hz: 100.0 }, shape(), 3);
        for _ in 0..256 {
            let r = g.take();
            assert!(!r.set.is_empty() && r.set.len() <= 4);
            assert!(r.set.iter().all(|x| x < 16));
            assert!(r.class < 2);
            assert!(r.cs >= Time::from_millis(1) && r.cs <= Time::from_millis(4));
        }
    }
}
