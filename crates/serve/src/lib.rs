//! Allocation-as-a-service serving layer.
//!
//! The engines in this workspace are *closed-loop*: each node thinks, then
//! issues its next critical-section request, so a slow allocator quietly
//! slows the request stream down with it.  Real serving systems are
//! *open-loop* — callers arrive on their own schedule — and measuring them
//! with a closed loop produces coordinated omission: latency percentiles
//! that ignore exactly the queueing delay users experience.
//!
//! This crate supplies the open-loop front end:
//!
//! * [`arrivals`] — seeded, deterministic Poisson and heavy-tailed
//!   (bounded-Pareto) arrival processes that fabricate requests;
//! * [`admission`] — a bounded FIFO admission queue with per-class quotas,
//!   shed accounting, and batching of pairwise-disjoint resource vectors
//!   into single critical-section requests;
//! * [`serve`] — [`ServeWorkload`], which adapts the open-loop stream onto
//!   the engines' pull-based `Workload` trait and reports intended-arrival
//!   timestamps so latency is keyed where the request *arrived*, not where
//!   the closed loop got around to issuing it;
//! * [`stats`] — end-to-end (arrival → grant → release) latency histograms
//!   and conservation counters shared out of the consumed workload.

pub mod admission;
pub mod arrivals;
pub mod serve;
pub mod stats;

pub use admission::{Admission, AdmissionQueue, ServeReq};
pub use arrivals::{ArrivalGen, Interarrival, RequestShape};
pub use serve::{check_conservation, ServeConfig, ServeWorkload};
pub use stats::{ServeStats, SharedServeStats};
