//! Serving-layer accounting: admission counters and end-to-end latency
//! histograms.
//!
//! Latencies here are keyed by *intended arrival* time, not issue time —
//! that is the whole point of the serving layer's measurement contract.
//! An engine-side `wait` histogram keyed by issue time understates tail
//! latency whenever the admission queue is non-empty (coordinated
//! omission); the `grant`/`done` histograms below include that queueing.

use std::sync::{Arc, Mutex, MutexGuard};

use mra_obs::LogHist;
use mra_types::Time;

/// Counters + histograms for one node's serving layer.
///
/// Conservation invariant (checked by tests, reported by benches):
/// `offered == admitted + shed_depth + shed_class`, and at quiescence
/// `admitted == served + queued + inflight`.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Arrivals generated (open loop: independent of server health).
    pub offered: u64,
    /// Arrivals accepted into the admission queue.
    pub admitted: u64,
    /// Arrivals rejected because the queue was at `max_depth`.
    pub shed_depth: u64,
    /// Arrivals rejected because their class was at quota.
    pub shed_class: u64,
    /// Engine-level critical-section requests issued (one per batch).
    pub batches: u64,
    /// Requests folded into those batches.
    pub batched_reqs: u64,
    /// Requests whose critical section was entered (granted).
    pub granted: u64,
    /// Requests fully served (granted and released).
    pub served: u64,
    /// Deepest admission-queue depth observed.
    pub depth_high_water: usize,
    /// Intended-arrival → grant latency, per request (not per batch).
    pub grant_latency: LogHist,
    /// Intended-arrival → release latency, per request.
    pub done_latency: LogHist,
}

impl ServeStats {
    /// Record one request's grant, keyed by its intended arrival.
    pub fn on_grant(&mut self, arrival: Time, now: Time) {
        self.granted += 1;
        self.grant_latency
            .record(now.saturating_sub(arrival).as_nanos());
    }

    /// Record one request's completion, keyed by its intended arrival.
    pub fn on_done(&mut self, arrival: Time, now: Time) {
        self.served += 1;
        self.done_latency
            .record(now.saturating_sub(arrival).as_nanos());
    }

    /// Total shed arrivals.
    pub fn shed(&self) -> u64 {
        self.shed_depth + self.shed_class
    }

    /// Fold another node's stats into this one (for fleet-wide reports).
    pub fn merge(&mut self, other: &ServeStats) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.shed_depth += other.shed_depth;
        self.shed_class += other.shed_class;
        self.batches += other.batches;
        self.batched_reqs += other.batched_reqs;
        self.granted += other.granted;
        self.served += other.served;
        self.depth_high_water = self.depth_high_water.max(other.depth_high_water);
        self.grant_latency.merge(&other.grant_latency);
        self.done_latency.merge(&other.done_latency);
    }
}

/// Shared handle to a node's [`ServeStats`].
///
/// The engine consumes the `ServeWorkload` by value, so callers keep this
/// handle to read results after the run.  Lock contention is a non-issue:
/// each node owns its own stats and touches them a handful of times per
/// critical section.
#[derive(Clone, Debug, Default)]
pub struct SharedServeStats(Arc<Mutex<ServeStats>>);

impl SharedServeStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the underlying stats (poison-tolerant: a panicking peer must
    /// not hide the accounting that led up to the panic).
    pub fn lock(&self) -> MutexGuard<'_, ServeStats> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Merge a whole fleet's per-node stats into one report.
    pub fn merge_all(handles: &[SharedServeStats]) -> ServeStats {
        let mut total = ServeStats::default();
        for h in handles {
            total.merge(&h.lock());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let a = SharedServeStats::new();
        let b = SharedServeStats::new();
        {
            let mut g = a.lock();
            g.offered = 3;
            g.admitted = 2;
            g.shed_depth = 1;
            g.on_grant(Time::from_millis(1), Time::from_millis(5));
            g.on_done(Time::from_millis(1), Time::from_millis(9));
        }
        {
            let mut g = b.lock();
            g.offered = 4;
            g.admitted = 4;
            g.depth_high_water = 7;
        }
        let t = SharedServeStats::merge_all(&[a, b]);
        assert_eq!(t.offered, 7);
        assert_eq!(t.admitted, 6);
        assert_eq!(t.shed(), 1);
        assert_eq!(t.granted, 1);
        assert_eq!(t.served, 1);
        assert_eq!(t.depth_high_water, 7);
        assert_eq!(t.grant_latency.count(), 1);
        assert_eq!(t.done_latency.count(), 1);
    }
}
