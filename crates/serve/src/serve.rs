//! `ServeWorkload`: the adapter that makes a closed-loop engine serve an
//! open-loop request stream.
//!
//! Every engine in this workspace (discrete-event `Sim`, the threaded
//! runtime, the TCP reactor cluster) drives nodes through the pull-based
//! [`Workload`] trait: *think, then ask for the next request*.  That is a
//! closed loop — a slow node asks less often, and latency measured from
//! the ask (issue time) silently forgives queueing delay.
//!
//! `ServeWorkload` inverts control without touching the engines, using the
//! `Workload` timing hooks:
//!
//! * [`set_now`](Workload::set_now) pumps the arrival generator up to the
//!   engine clock, offering every arrival to the admission queue (and
//!   accounting sheds) the moment it "happens";
//! * [`think_time`](Workload::think_time) returns the gap to the next
//!   arrival when idle, or ~0 when a backlog is queued — so the engine's
//!   think timer fires exactly at arrival instants, never before;
//! * [`next_request`](Workload::next_request) pops a batch of pairwise
//!   disjoint requests and presents their union as one critical-section
//!   request whose duration covers the longest member;
//! * [`intended_arrival`](Workload::intended_arrival) reports the oldest
//!   batched arrival, which the engine threads into its metrics — that is
//!   the coordinated-omission fix;
//! * [`on_grant`](Workload::on_grant) / [`on_release`](Workload::on_release)
//!   stamp per-member end-to-end latencies into [`ServeStats`].

use rand::rngs::StdRng;

use mra_sim::Workload;
use mra_types::{ResourceSet, Time};

use crate::admission::{Admission, AdmissionQueue, ServeReq};
use crate::arrivals::{ArrivalGen, Interarrival, RequestShape};
use crate::stats::{ServeStats, SharedServeStats};

/// Configuration for one node's serving front end.
///
/// Every field has an `MRA_SERVE_*` environment override (applied by
/// [`ServeConfig::from_env`]) so benches and CI can sweep without
/// recompiling.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Offered arrival rate per node, in requests/second
    /// (`MRA_SERVE_RATE`).
    pub rate_hz: f64,
    /// Use heavy-tailed bursty interarrivals instead of Poisson
    /// (`MRA_SERVE_BURSTY=1`), with this Pareto shape.
    pub bursty: bool,
    /// Pareto shape parameter for bursty mode.
    pub pareto_alpha: f64,
    /// Admission-queue depth bound (`MRA_SERVE_DEPTH`).
    pub max_depth: usize,
    /// Max requests folded into one critical-section batch
    /// (`MRA_SERVE_BATCH`).
    pub max_batch: usize,
    /// How many entries past the queue head to scan for disjoint sets
    /// (`MRA_SERVE_SCAN`).
    pub batch_scan: usize,
    /// Number of service classes (`MRA_SERVE_CLASSES`).
    pub classes: usize,
    /// Per-class queued-request quota; `None` disables
    /// (`MRA_SERVE_QUOTA`, `0` = disabled).
    pub class_quota: Option<usize>,
    /// Shape of fabricated requests.
    pub shape: RequestShape,
    /// Base seed; node `i` derives its stream from `seed` and `i`.
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            rate_hz: 200.0,
            bursty: false,
            pareto_alpha: 1.5,
            max_depth: 64,
            max_batch: 4,
            batch_scan: 8,
            classes: 2,
            class_quota: None,
            shape: RequestShape {
                m: 16,
                phi: 3,
                cs_min: Time::from_micros(500),
                cs_max: Time::from_millis(2),
                classes: 2,
            },
            seed: 0x5e21,
        }
    }
}

impl ServeConfig {
    /// Apply `MRA_SERVE_*` environment overrides on top of `self`.
    pub fn from_env(mut self) -> Self {
        fn num<T: std::str::FromStr>(key: &str) -> Option<T> {
            std::env::var(key).ok()?.trim().parse().ok()
        }
        if let Some(v) = num::<f64>("MRA_SERVE_RATE") {
            self.rate_hz = v.max(1e-3);
        }
        if let Some(v) = num::<u8>("MRA_SERVE_BURSTY") {
            self.bursty = v != 0;
        }
        if let Some(v) = num::<usize>("MRA_SERVE_DEPTH") {
            self.max_depth = v.max(1);
        }
        if let Some(v) = num::<usize>("MRA_SERVE_BATCH") {
            self.max_batch = v.max(1);
        }
        if let Some(v) = num::<usize>("MRA_SERVE_SCAN") {
            self.batch_scan = v;
        }
        if let Some(v) = num::<usize>("MRA_SERVE_CLASSES") {
            let v = v.max(1);
            self.classes = v;
            self.shape.classes = v;
        }
        if let Some(v) = num::<usize>("MRA_SERVE_QUOTA") {
            self.class_quota = if v == 0 { None } else { Some(v) };
        }
        self
    }

    fn interarrival(&self) -> Interarrival {
        if self.bursty {
            Interarrival::ParetoBurst {
                rate_hz: self.rate_hz,
                alpha: self.pareto_alpha,
            }
        } else {
            Interarrival::Poisson {
                rate_hz: self.rate_hz,
            }
        }
    }
}

/// Open-loop serving workload for one node.  See the module docs for how
/// it maps onto the closed-loop `Workload` trait.
#[derive(Debug)]
pub struct ServeWorkload {
    gen: ArrivalGen,
    queue: AdmissionQueue,
    max_batch: usize,
    batch_scan: usize,
    now: Time,
    /// Members of the in-flight critical-section batch.
    batch: Vec<ServeReq>,
    /// Oldest intended arrival in the in-flight batch.
    batch_arrival: Option<Time>,
    stats: SharedServeStats,
}

impl ServeWorkload {
    /// Build node `node`'s workload; its arrival stream is derived from
    /// `cfg.seed` and `node` so fleets are deterministic yet decorrelated.
    pub fn new(cfg: &ServeConfig, node: usize) -> Self {
        let mut shape = cfg.shape.clone();
        shape.classes = shape.classes.max(cfg.classes).max(1);
        let seed = cfg
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(node as u64 + 1);
        ServeWorkload {
            gen: ArrivalGen::new(cfg.interarrival(), shape, seed),
            queue: AdmissionQueue::new(cfg.max_depth, cfg.classes, cfg.class_quota),
            max_batch: cfg.max_batch.max(1),
            batch_scan: cfg.batch_scan,
            now: Time::ZERO,
            batch: Vec::new(),
            batch_arrival: None,
            stats: SharedServeStats::new(),
        }
    }

    /// Build a whole fleet plus the stats handles that outlive it.
    pub fn fleet(cfg: &ServeConfig, n: usize) -> (Vec<ServeWorkload>, Vec<SharedServeStats>) {
        let workloads: Vec<_> = (0..n).map(|i| ServeWorkload::new(cfg, i)).collect();
        let handles = workloads.iter().map(|w| w.stats()).collect();
        (workloads, handles)
    }

    /// Shared handle to this node's serving stats (keep it: the engine
    /// consumes the workload by value).
    pub fn stats(&self) -> SharedServeStats {
        self.stats.clone()
    }

    /// Offer every arrival up to (and including) the current clock to the
    /// admission queue, accounting the verdicts.
    fn pump(&mut self) {
        while self.gen.peek() <= self.now {
            let req = self.gen.take();
            let mut s = self.stats.lock();
            s.offered += 1;
            match self.queue.offer(req) {
                Admission::Admitted => s.admitted += 1,
                Admission::ShedDepth => s.shed_depth += 1,
                Admission::ShedClass => s.shed_class += 1,
            }
            s.depth_high_water = s.depth_high_water.max(self.queue.high_water);
        }
    }

    /// Requests the caller shed or left queued are gone from the engine's
    /// point of view; expose the queue for end-of-run accounting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

impl Workload for ServeWorkload {
    fn set_now(&mut self, now: Time) {
        // Engine clocks are monotone per node, but the threaded runtime
        // may deliver a slightly stale shared clock; never move backward.
        self.now = self.now.max(now);
        self.pump();
    }

    fn think_time(&mut self, _rng: &mut StdRng) -> Time {
        if !self.queue.is_empty() {
            // Backlog: issue the next batch essentially immediately.  1 ns
            // keeps the engine's strictly-forward event clock happy.
            return Time::from_nanos(1);
        }
        // Idle: sleep exactly until the next intended arrival.
        self.gen
            .peek()
            .saturating_sub(self.now)
            .max(Time::from_nanos(1))
    }

    fn next_request(&mut self, _rng: &mut StdRng) -> (ResourceSet, Time) {
        self.pump();
        if self.queue.is_empty() {
            // The think timer normally fires exactly at an arrival instant
            // (see `think_time`), so the queue cannot be empty here in the
            // simulator.  The wall-clock runtime can fire a hair early,
            // though: treat the imminent arrival as having happened.
            self.now = self.now.max(self.gen.peek());
            self.pump();
        }
        let batch = self.queue.pop_batch(self.max_batch, self.batch_scan);
        debug_assert!(!batch.is_empty(), "think timer fired with no arrival");
        let mut union = ResourceSet::default();
        let mut cs = Time::ZERO;
        for r in &batch {
            union.union_with(&r.set);
            cs = cs.max(r.cs);
        }
        {
            let mut s = self.stats.lock();
            s.batches += 1;
            s.batched_reqs += batch.len() as u64;
        }
        // FIFO admission means the head is the oldest member.
        self.batch_arrival = batch.first().map(|r| r.arrival);
        self.batch = batch;
        (union, cs)
    }

    fn intended_arrival(&self) -> Option<Time> {
        self.batch_arrival
    }

    fn on_grant(&mut self, now: Time) {
        let mut s = self.stats.lock();
        for r in &self.batch {
            s.on_grant(r.arrival, now);
        }
    }

    fn on_release(&mut self, now: Time) {
        let mut s = self.stats.lock();
        for r in self.batch.drain(..) {
            s.on_done(r.arrival, now);
        }
        drop(s);
        self.batch_arrival = None;
    }
}

/// Fleet-wide conservation check, usable from tests and benches: offered
/// splits exactly into admitted + shed, and everything admitted is either
/// served, still queued, or in flight.
pub fn check_conservation(total: &ServeStats, queued: u64, inflight: u64) -> Result<(), String> {
    if total.offered != total.admitted + total.shed_depth + total.shed_class {
        return Err(format!(
            "offered {} != admitted {} + shed {}",
            total.offered,
            total.admitted,
            total.shed()
        ));
    }
    if total.admitted != total.served + queued + inflight {
        return Err(format!(
            "admitted {} != served {} + queued {} + inflight {}",
            total.admitted, total.served, queued, inflight
        ));
    }
    if total.granted < total.served {
        return Err(format!(
            "granted {} < served {}",
            total.granted, total.served
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> ServeConfig {
        ServeConfig {
            rate_hz: 1000.0,
            ..ServeConfig::default()
        }
    }

    /// Hand-drive the workload the way an engine does and check the
    /// open-loop contract end to end.
    #[test]
    fn manual_engine_loop_conserves_requests() {
        let mut w = ServeWorkload::new(&cfg(), 0);
        let stats = w.stats();
        let mut rng = StdRng::seed_from_u64(9);
        let mut now = Time::ZERO;
        let mut served = 0u64;
        for _ in 0..200 {
            w.set_now(now);
            let think = w.think_time(&mut rng);
            now += think;
            w.set_now(now);
            let (set, cs) = w.next_request(&mut rng);
            assert!(!set.is_empty());
            let arrival = w.intended_arrival().expect("batch in flight");
            assert!(arrival <= now, "arrival {arrival:?} after issue {now:?}");
            // Pretend the allocator granted after some protocol delay.
            now += Time::from_micros(300);
            w.on_grant(now);
            now += cs;
            served += w.batch.len() as u64;
            w.on_release(now);
        }
        let s = stats.lock();
        assert_eq!(s.batches, 200);
        assert_eq!(s.served, served);
        assert_eq!(s.granted, s.served);
        assert_eq!(s.offered, s.admitted + s.shed());
        assert_eq!(s.admitted, s.served + w.queue.len() as u64);
        // End-to-end latency includes queueing + protocol + CS.
        assert!(s.done_latency.mean() > s.grant_latency.mean());
    }

    #[test]
    fn idle_node_sleeps_to_next_arrival_exactly() {
        let mut w = ServeWorkload::new(&cfg(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        w.set_now(Time::ZERO);
        assert!(w.queue.is_empty());
        let think = w.think_time(&mut rng);
        assert_eq!(think, w.gen.peek());
        // Firing the timer at exactly that instant must find the arrival.
        w.set_now(think);
        assert_eq!(w.queue.len(), 1);
    }

    #[test]
    fn backlog_returns_epsilon_think() {
        let mut w = ServeWorkload::new(&cfg(), 2);
        let mut rng = StdRng::seed_from_u64(2);
        // Jump far ahead: many arrivals pile into the queue (some shed).
        w.set_now(Time::from_millis(50));
        assert!(!w.queue.is_empty());
        assert_eq!(w.think_time(&mut rng), Time::from_nanos(1));
        let depth = w.queue.len() as u64;
        let s = w.stats();
        let g = s.lock();
        assert_eq!(g.admitted, depth);
        assert!(g.offered >= depth);
        assert!(g.depth_high_water as u64 >= depth.min(64));
        drop(g);
        // Shedding kicked in at the 64-deep bound: ~50 ms at 1 kHz ≈ 50
        // arrivals normally, but jumping the clock pumps them all at once.
        assert!(w.queue.len() <= 64);
    }

    #[test]
    fn env_overrides_apply() {
        // Serialize with other env-reading tests by using unique keys only
        // here; set → read → clear.
        std::env::set_var("MRA_SERVE_RATE", "750");
        std::env::set_var("MRA_SERVE_DEPTH", "9");
        std::env::set_var("MRA_SERVE_BATCH", "2");
        std::env::set_var("MRA_SERVE_SCAN", "3");
        std::env::set_var("MRA_SERVE_CLASSES", "4");
        std::env::set_var("MRA_SERVE_QUOTA", "5");
        std::env::set_var("MRA_SERVE_BURSTY", "1");
        let c = ServeConfig::default().from_env();
        for k in [
            "MRA_SERVE_RATE",
            "MRA_SERVE_DEPTH",
            "MRA_SERVE_BATCH",
            "MRA_SERVE_SCAN",
            "MRA_SERVE_CLASSES",
            "MRA_SERVE_QUOTA",
            "MRA_SERVE_BURSTY",
        ] {
            std::env::remove_var(k);
        }
        assert_eq!(c.rate_hz, 750.0);
        assert_eq!(c.max_depth, 9);
        assert_eq!(c.max_batch, 2);
        assert_eq!(c.batch_scan, 3);
        assert_eq!(c.classes, 4);
        assert_eq!(c.shape.classes, 4);
        assert_eq!(c.class_quota, Some(5));
        assert!(c.bursty);
    }
}
