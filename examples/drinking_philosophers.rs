//! The drinking philosophers (Chandy–Misra 1984), solved with the paper's
//! algorithm — *without* knowing the conflict graph.
//!
//! Each of the N philosophers shares one bottle with each table neighbor
//! (bottle `i` sits between philosophers `i` and `(i+1) % N`).  A drinking
//! session needs a random non-empty subset of the philosopher's adjacent
//! bottles — exactly the dynamic conflict structure that makes the problem
//! harder than dining philosophers.
//!
//! The example verifies safety live (via the protocol testkit) and shows
//! the concurrency property: philosophers with disjoint bottle sets drink
//! simultaneously.
//!
//! ```text
//! cargo run --release --example drinking_philosophers
//! ```

use mra::core::LassConfig;
use mra::protocol::testkit::VirtualNet;
use mra::types::ResourceSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 5; // philosophers == bottles around the table

fn adjacent_bottles(philosopher: usize) -> [usize; 2] {
    [philosopher, (philosopher + N - 1) % N]
}

fn main() {
    let cfg = LassConfig::with_loan(N, N);
    let mut net = VirtualNet::new(cfg.build_nodes(), N);
    let mut rng = StdRng::seed_from_u64(2024);

    let mut sessions = vec![0usize; N];
    let mut max_drinking_at_once = 0;
    let rounds = 40;

    println!("{N} drinking philosophers, {rounds} sessions each\n");
    while sessions.iter().any(|&s| s < rounds) {
        // Random scheduler step: deliver protocol traffic or act.
        if rng.gen_bool(0.6) && net.deliver_one(&mut rng) {
            // a message moved
        } else {
            let p = rng.gen_range(0..N);
            if net.in_cs(p) {
                sessions[p] += 1;
                net.release(p);
            } else if net.state(p) == mra::protocol::ProcState::Idle && sessions[p] < rounds {
                // Thirsty: grab one or both adjacent bottles.
                let [a, b] = adjacent_bottles(p);
                let set: ResourceSet = if rng.gen_bool(0.5) {
                    [a, b].into_iter().collect()
                } else if rng.gen_bool(0.5) {
                    ResourceSet::singleton(a)
                } else {
                    ResourceSet::singleton(b)
                };
                net.request(p, set);
            }
        }
        max_drinking_at_once = max_drinking_at_once.max(net.monitor.concurrency());
    }

    println!("sessions completed per philosopher: {sessions:?}");
    println!("max philosophers drinking at once:  {max_drinking_at_once}");
    println!("messages delivered:                 {}", net.delivered());
    println!(
        "\nNo deadlock, no double-held bottle (checked live), and at least \
         two philosophers drank concurrently: {}",
        if max_drinking_at_once >= 2 { "yes" } else { "no" }
    );
    assert!(max_drinking_at_once >= 2);
}
