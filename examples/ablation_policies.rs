//! Explore the algorithm's two tuning knobs:
//!
//! 1. the scheduling function `A` (§3.3.2 — "a parameter of the
//!    algorithm"), comparing the paper's average-of-non-null-counters
//!    against max / sum / min variants;
//! 2. the loan threshold (§4.5 / §6 — the paper evaluates 1 and leaves the
//!    sweep as future work).
//!
//! ```text
//! cargo run --release --example ablation_policies
//! ```

use mra::core::SchedulingPolicy;
use mra::workloads::experiments::measure_secs_or;
use mra::workloads::{run, Algorithm, Load, Scenario};

fn main() {
    println!("A-policy ablation (phi = 8, high load, 32x80):\n");
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "policy", "use rate", "mean wait", "p95 wait"
    );
    for policy in SchedulingPolicy::all() {
        let sc = Scenario::builder()
            .load(Load::High)
            .max_request_size(8)
            .policy(policy)
            .seed(4)
            .measure_secs(measure_secs_or(4.0))
            .build();
        let res = run(Algorithm::LassLoan, &sc);
        let w = res.wait_stats();
        println!(
            "{:<8} {:>9.1}% {:>9.1} ms {:>9.1} ms",
            policy.name(),
            100.0 * res.use_rate(),
            w.mean_ms,
            w.p95_ms
        );
    }

    println!("\nloan-threshold sweep (phi = 8, high load):\n");
    println!("{:<10} {:>10} {:>12}", "threshold", "use rate", "mean wait");
    for threshold in [0usize, 1, 2, 3, 4] {
        let sc = Scenario::builder()
            .load(Load::High)
            .max_request_size(8)
            .loan_threshold(threshold.max(1))
            .seed(4)
            .measure_secs(measure_secs_or(4.0))
            .build();
        let algo = if threshold == 0 {
            Algorithm::LassNoLoan
        } else {
            Algorithm::LassLoan
        };
        let res = run(algo, &sc);
        println!(
            "{:<10} {:>9.1}% {:>9.1} ms",
            if threshold == 0 {
                "off".to_string()
            } else {
                threshold.to_string()
            },
            100.0 * res.use_rate(),
            res.wait_stats().mean_ms
        );
    }
    println!(
        "\nThe paper's choices (avg policy, threshold 1) sit at or near the \
         best use-rate/wait trade-off."
    );
}
