//! The paper's future-work scenario (§6): multi-resource allocation on a
//! *hierarchical* physical topology such as a cloud — two sites with cheap
//! intra-site and expensive inter-site links.
//!
//! Story: 16 schedulers per site co-allocate bundles of shared appliances
//! (GPUs, licenses, scratch volumes…).  A global-lock algorithm drags every
//! allocation through inter-site round trips; the counter-based algorithm
//! only talks across sites when requests actually conflict.
//!
//! ```text
//! cargo run --release --example cloud_allocation
//! ```

use mra::baselines::BouabdallahLaforest;
use mra::core::LassConfig;
use mra::sim::{LatencyModel, Sim};
use mra::types::Time;
use mra::workloads::experiments::measure_secs_or;
use mra::workloads::{PaperWorkload, Scenario};

fn main() {
    let sc = Scenario::builder()
        .nodes(32)
        .resources(80)
        .max_request_size(4)
        .rho(0.3)
        .seed(99)
        .measure_secs(measure_secs_or(5.0))
        .build();

    // Two 16-node sites; 0.1 ms within a site, 5 ms across.
    let cloud = LatencyModel::two_clusters(
        sc.n,
        sc.n / 2,
        Time::from_micros(100),
        Time::from_millis(5),
    );

    println!(
        "two-site cloud: {} nodes, {} resources, intra 0.1 ms / inter 5 ms\n",
        sc.n, sc.m
    );
    println!(
        "{:<22} {:>10} {:>12} {:>10}",
        "algorithm", "use rate", "mean wait", "msgs/CS"
    );

    // Bouabdallah-Laforest: the control token crosses sites constantly.
    let mut cfg = sc.sim_config();
    cfg.latency = cloud.clone();
    let bl = Sim::new(
        BouabdallahLaforest::build_nodes(sc.n, sc.m),
        PaperWorkload::per_node(&sc, sc.n),
        sc.m,
        cfg,
    )
    .run();
    println!(
        "{:<22} {:>9.1}% {:>9.1} ms {:>10.1}",
        "Bouabdallah-Laforest",
        100.0 * bl.use_rate(),
        bl.wait_stats().mean_ms,
        bl.msgs_per_cs()
    );

    // LASS: communication only along conflict edges.
    let mut cfg = sc.sim_config();
    cfg.latency = cloud;
    let lass_cfg = LassConfig::with_loan(sc.n, sc.m);
    let lass = Sim::new(
        lass_cfg.build_nodes(),
        PaperWorkload::per_node(&sc, sc.n),
        sc.m,
        cfg,
    )
    .run();
    println!(
        "{:<22} {:>9.1}% {:>9.1} ms {:>10.1}",
        "LASS (with loan)",
        100.0 * lass.use_rate(),
        lass.wait_stats().mean_ms,
        lass.msgs_per_cs()
    );

    let speedup = bl.wait_stats().mean_ms / lass.wait_stats().mean_ms.max(1e-9);
    println!(
        "\nwaiting-time advantage of the counter mechanism on this topology: {speedup:.1}x \
         (the paper's conclusion predicts the gap to widen on clouds — §6)"
    );
}
