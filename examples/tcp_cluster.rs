//! Run the same LASS workload on the two real-time substrates — the mpsc
//! threaded runtime and the TCP loopback cluster — and compare their
//! metrics side by side.  This is the paper's deployment story in one
//! screen: identical protocol state machines, identical workload driver,
//! identical safety monitoring; only the bytes move differently.
//!
//! ```text
//! cargo run --release --example tcp_cluster
//! ```

use mra::core::LassConfig;
use mra::net::{run_tcp_cluster, TcpClusterConfig};
use mra::sim::{run_threaded, FixedWorkload, RunResult, ThreadedConfig};
use mra::types::Time;

const N: usize = 4;
const M: usize = 12;
const SIZE: usize = 3;

fn workloads() -> Vec<FixedWorkload> {
    (0..N)
        .map(|_| FixedWorkload {
            think: Time::from_micros(300),
            cs: Time::from_micros(500),
            m: M,
            size: SIZE,
        })
        .collect()
}

fn report(label: &str, res: &RunResult) {
    let w = res.wait_stats();
    println!(
        "{label:<18} {:>4} CS   wait mean {:7.3} ms (p95 {:7.3})   {:5.1} msgs/CS   weight {}",
        res.cs_completed,
        w.mean_ms,
        w.p95_ms,
        res.msgs_per_cs(),
        res.msg_weight,
    );
}

fn main() {
    let fast = std::env::var("MRA_FAST").is_ok_and(|v| !v.is_empty() && v != "0");
    let rounds = if fast { 4 } else { 12 };
    let seed = 7;

    println!(
        "LASS (with loan), {N} nodes x {M} resources, {SIZE} per request, \
         {rounds} rounds per node\n"
    );

    // Substrate 3: OS threads + mpsc channels, 50 us emulated latency.
    let mpsc_res = run_threaded(
        LassConfig::with_loan(N, M).build_nodes(),
        workloads(),
        M,
        ThreadedConfig {
            rounds,
            latency: Time::from_micros(50),
            seed,
            active_nodes: None,
        },
    );
    report("mpsc channels", &mpsc_res);

    // Substrate 4: the same protocol over real loopback TCP sockets, raw.
    let tcp_res = run_tcp_cluster(
        LassConfig::with_loan(N, M).build_nodes(),
        workloads(),
        M,
        TcpClusterConfig::new(rounds, seed),
    );
    report("tcp loopback", &tcp_res);

    // And once more with the same 50 us stacked on the wire, to make the
    // two runs directly comparable latency-wise.
    let tcp_lat = run_tcp_cluster(
        LassConfig::with_loan(N, M).build_nodes(),
        workloads(),
        M,
        TcpClusterConfig {
            extra_latency: Time::from_micros(50),
            ..TcpClusterConfig::new(rounds, seed)
        },
    );
    report("tcp + 50us", &tcp_lat);

    let quota = (N * rounds) as u64;
    assert_eq!(mpsc_res.cs_completed, quota);
    assert_eq!(tcp_res.cs_completed, quota);
    assert_eq!(tcp_lat.cs_completed, quota);
    println!(
        "\nAll three runs completed their quota of {quota} critical sections \
         with zero safety violations."
    );
}
