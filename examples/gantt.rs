//! Reproduce the spirit of the paper's Fig. 1 and Fig. 4: per-resource
//! Gantt charts showing how the global lock (Bouabdallah–Laforest) leaves
//! idle gaps that the counter mechanism fills, and how the loan mechanism
//! fills even more.
//!
//! ```text
//! cargo run --release --example gantt
//! ```

use mra::sim::render_gantt;
use mra::workloads::experiments::measure_secs_or;
use mra::workloads::{run, Algorithm, Load, Scenario};

fn main() {
    // A small, highly contended system so the chart stays readable:
    // 5 resources like the paper's Fig. 1.
    let scenario = Scenario::builder()
        .nodes(6)
        .resources(5)
        .max_request_size(3)
        .load(Load::High)
        .seed(7)
        .measure_secs(measure_secs_or(0.4))
        .build();

    for algo in [
        Algorithm::BouabdallahLaforest,
        Algorithm::LassNoLoan,
        Algorithm::LassLoan,
    ] {
        let res = run(algo, &scenario);
        println!("--- {} ---", algo.label());
        println!("{}", render_gantt(&res, 100));
    }
    println!(
        "Each row is a resource; each column ~4 ms; digits identify the \
         node using the resource (the paper's Fig. 4 'colored area')."
    );
}
