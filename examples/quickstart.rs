//! Quickstart: run the paper's algorithm on a small simulated cluster and
//! print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mra::workloads::experiments::measure_secs_or;
use mra::workloads::{run, Algorithm, Scenario};

fn main() {
    // 8 processes sharing 20 resources; requests ask for up to 4 of them.
    let scenario = Scenario::builder()
        .nodes(8)
        .resources(20)
        .max_request_size(4)
        .measure_secs(measure_secs_or(5.0))
        .seed(42)
        .build();

    println!(
        "simulating {} nodes x {} resources, phi = {}, beta = {} ...\n",
        scenario.n,
        scenario.m,
        scenario.phi,
        scenario.beta()
    );

    for algo in [
        Algorithm::Incremental,
        Algorithm::BouabdallahLaforest,
        Algorithm::LassNoLoan,
        Algorithm::LassLoan,
    ] {
        let res = run(algo, &scenario);
        let w = res.wait_stats();
        println!(
            "{:<22} use rate {:5.1}%   wait {:6.1} ms (p95 {:6.1})   {:5.1} msgs/CS   {} CS",
            algo.label(),
            100.0 * res.use_rate(),
            w.mean_ms,
            w.p95_ms,
            res.msgs_per_cs(),
            res.cs_completed,
        );
    }

    println!(
        "\nThe counter-based algorithm (With loan) should show the lowest \
         waiting time and the highest use rate — the paper's headline result."
    );
}
